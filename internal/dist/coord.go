package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"busenc/internal/bus"
	"busenc/internal/codec"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Coordinator: plan -> seed sweep -> dispatch -> merge. Concurrency is
// deliberately boring — one goroutine per slot (local worker process or
// TCP peer) pulling shard indices off a shared queue with a bounded
// in-flight window (see dispatch.go), results funneled to the
// coordinator goroutine over a channel, no shared mutable state beyond
// the counters. Determinism comes from the merge, not the schedule:
// results land in fixed per-shard slots and buses merge in ascending
// shard order, so any interleaving of workers produces the same totals.

// Spawner creates worker transports. id is the worker's slot in the
// pool; gen counts respawns of that slot (0 for the first spawn), which
// fault-injecting spawners use to fail only a worker's first life.
type Spawner interface {
	Spawn(id, gen int) (Transport, error)
}

// Transport is one worker connection: framed messages plus a Close that
// reaps the worker.
type Transport interface {
	Send(m msg) error
	Recv() (msg, error)
	Close() error
}

// SpawnerFunc adapts a function to the Spawner interface.
type SpawnerFunc func(id, gen int) (Transport, error)

func (f SpawnerFunc) Spawn(id, gen int) (Transport, error) { return f(id, gen) }

// ErrStopped is returned by Sweep when Opts.StopAfter interrupted the
// sweep: the checkpoint holds everything priced so far and a second
// Sweep with the same options resumes from it.
var ErrStopped = errors.New("dist: sweep stopped at checkpoint")

// Opts configures a distributed sweep.
type Opts struct {
	// Workers is the local worker-pool size; <= 0 means 1, unless
	// Peers is non-empty, in which case <= 0 means no local workers
	// (a peers-only sweep needs no Spawn at all).
	Workers int
	// Shards is the number of contiguous shards; <= 0 means 4 per
	// slot (workers + peers), the smallest count that keeps the pool
	// busy while shard runtimes vary.
	Shards int
	// Codecs are the codes to price, all in one pass per shard.
	Codecs []CodecSpec
	// Verify, PerLine and Kernel mirror codec.ParallelOpts, with the
	// same shard-0 verification semantics.
	Verify  codec.VerifyMode
	PerLine bool
	Kernel  codec.Kernel
	// Checkpoint is the journal path; empty disables checkpointing.
	Checkpoint string
	// Spawn creates local workers. Required when Workers > 0
	// (cmd/busencsweep passes the re-exec spawner, tests pass
	// in-process pipes).
	Spawn Spawner
	// Peers are busencd addresses (host:port) to price shards on over
	// TCP. Each peer is one slot in the pool, mixed freely with local
	// workers. The trace is shipped once per peer by SHA-256 digest
	// into its content-addressed store before dispatch; a peer that
	// already holds the digest receives zero trace bytes.
	Peers []string
	// Window bounds in-flight shards per slot; <= 0 means
	// DefaultWindow. Window 1 reproduces the old lock-step dispatch.
	Window int
	// HeartbeatInterval and HeartbeatTimeout tune liveness probing of
	// busy slots; <= 0 means the defaults. A slot silent past the
	// timeout is declared dead and its shards re-dispatch.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Net, when non-nil, accumulates network-transport counters
	// (frames, bytes, redispatches, trace shipping) for the caller.
	Net *NetStats
	// Harvest, when non-nil, turns on distributed tracing: the sweep
	// mints a trace ID, propagates span context in every job, and
	// collects every worker's and peer's tagged spans (with clock-offset
	// estimates) into Harvest at sweep end. Harvest.Merged then yields
	// the multi-process timeline. Harvesting only observes — results
	// are bit-identical with it on or off.
	Harvest *SpanHarvest
	// StopAfter, when positive, stops the sweep after that many shard
	// results have been journaled, returning ErrStopped — the
	// coordinator half of the kill/resume tests.
	StopAfter int
	// RetryLimit is the number of times a shard orphaned by a worker
	// death is re-dispatched before the sweep fails; <= 0 means 1
	// (retry once).
	RetryLimit int
}

// Sweep prices the trace at path across a pool of worker processes and
// returns one Result per requested codec, in opts.Codecs order, each
// bit-identical to codec.RunFast over the same stream. Text traces are
// converted to a temporary BETR file once; BETR traces are shared with
// the workers by path, so no shard data crosses the pipes.
func Sweep(path string, opts Opts) ([]codec.Result, error) {
	if len(opts.Codecs) == 0 {
		return nil, fmt.Errorf("dist: no codecs requested")
	}
	workers := opts.Workers
	if workers <= 0 {
		if len(opts.Peers) > 0 {
			workers = 0
		} else {
			workers = 1
		}
	}
	if workers > 0 && opts.Spawn == nil {
		return nil, fmt.Errorf("dist: no worker spawner")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 4 * (workers + len(opts.Peers))
	}

	var rootCtx obs.SpanContext
	if opts.Harvest != nil {
		opts.Harvest.start(obs.NewTraceID())
		rootCtx.Trace = opts.Harvest.TraceID()
	}
	root := obs.StartSpanCtx("dist.sweep", obs.StageEval, rootCtx).WithStream(path)

	// Plan: one scan of the byte view yields the shard descriptors.
	psp := root.Child("dist.plan", obs.StageRead)
	plan, cleanup, err := planTrace(path, shards)
	if err != nil {
		psp.EndErr(err)
		root.EndErr(err)
		return nil, err
	}
	defer cleanup()
	digest := planDigest(plan.idx, opts.Codecs, int(opts.Verify), opts.PerLine, int(opts.Kernel))
	psp.End()

	// Checkpoint: recover what a previous coordinator already priced.
	prior, jr, err := openCheckpoint(opts.Checkpoint, digest, plan, shards, opts.Codecs)
	if err != nil {
		root.EndErr(err)
		return nil, err
	}
	if jr != nil {
		defer jr.Close()
	}

	// Seed sweep: one sequential state-only pass per prefix-dependent
	// codec, producing the marshaled boundary state each mid-stream
	// shard needs. Skipped entirely when every codec seeds from the
	// previous symbol, or when the journal already holds the states.
	ssp := root.Child("dist.seed_sweep", obs.StageEncode)
	states, err := boundaryStates(plan, opts.Codecs, shards, prior, jr)
	if err != nil {
		ssp.EndErr(err)
		root.EndErr(err)
		return nil, err
	}
	ssp.End()

	// Slot pool: one config per local worker plus one per TCP peer.
	// Peers are handshaken (version via /healthz) and the trace is
	// shipped by digest before any shard is dispatched, so a dispatch
	// never stalls on a bulk upload.
	cfgs := make([]slotConfig, 0, workers+len(opts.Peers))
	for i := 0; i < workers; i++ {
		cfgs = append(cfgs, slotConfig{spawn: opts.Spawn})
	}
	if len(opts.Peers) > 0 {
		ns := opts.Net
		if ns == nil {
			ns = &NetStats{}
		}
		ref, err := shipTrace(root, plan, opts.Peers, ns)
		if err != nil {
			root.EndErr(err)
			return nil, err
		}
		for _, addr := range opts.Peers {
			cfgs = append(cfgs, slotConfig{spawn: peerSpawner(addr, ns), ref: ref})
		}
	}

	// Dispatch: fan the not-yet-done shards out to the pool.
	stats, err := dispatch(root, plan, opts, cfgs, shards, states, prior, jr)
	if err != nil {
		root.EndErr(err)
		return nil, err
	}

	// Span harvest from TCP peers: their recorders outlive the /dist
	// connections, so tagged spans are pulled over plain HTTP once
	// dispatch is done. Best-effort — a harvest failure costs spans,
	// not the sweep.
	if opts.Harvest != nil && len(opts.Peers) > 0 {
		hsp := root.Child("dist.net.span_harvest", obs.StageNet)
		hsp.EndErr(harvestPeerSpans(opts.Peers, opts.Harvest))
	}

	// Merge: ascending shard order, per codec.
	msp := root.Child("dist.merge", obs.StageMerge)
	results, err := mergeStats(plan, opts.Codecs, stats)
	if err != nil {
		msp.EndErr(err)
		root.EndErr(err)
		return nil, err
	}
	msp.End()
	root.End()
	return results, nil
}

// planned is the coordinator's view of the trace: the shard index plus
// the mapped byte view it was planned over.
type planned struct {
	path string // BETR path the workers open (maybe a temp conversion)
	idx  *trace.BETRIndex
	data []byte
}

// planTrace maps the trace and plans shard descriptors over it. A text
// trace (anything without the BETR magic) is decoded once and
// materialized as a temporary BETR file so workers can byte-range it;
// the returned cleanup removes the temp file and unmaps the view.
func planTrace(path string, shards int) (*planned, func(), error) {
	data, closer, err := trace.MapBytes(path)
	if err != nil {
		return nil, nil, err
	}
	tmp := ""
	if len(data) < 4 || string(data[:4]) != "BETR" {
		// Text trace: convert once. The temp file lives for the whole
		// sweep so late-spawned (and respawned) workers can open it.
		s, derr := decodeText(path, closer)
		if derr != nil {
			return nil, nil, derr
		}
		f, ferr := os.CreateTemp("", "busenc-dist-*.betr")
		if ferr != nil {
			return nil, nil, ferr
		}
		if err := trace.WriteBinary(f, s); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return nil, nil, err
		}
		tmp = f.Name()
		path = tmp
		data, closer, err = trace.MapBytes(path)
		if err != nil {
			os.Remove(tmp)
			return nil, nil, err
		}
	}
	idx, err := trace.IndexBETR(data, path, shards)
	if err != nil {
		closer.Close()
		if tmp != "" {
			os.Remove(tmp)
		}
		return nil, nil, err
	}
	RecordPlan(idx.Total, shards)
	cleanup := func() {
		closer.Close()
		if tmp != "" {
			os.Remove(tmp)
		}
	}
	return &planned{path: path, idx: idx, data: data}, cleanup, nil
}

// decodeText reads a whole non-BETR trace through the streaming
// reader. viewCloser is the MapBytes closer for the raw view, released
// here in all paths.
func decodeText(path string, viewCloser interface{ Close() error }) (*trace.Stream, error) {
	defer viewCloser.Close()
	r, closer, err := trace.OpenFile(path, nil)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	return trace.ReadAll(r)
}

// planDigest content-addresses a sweep plan: the shard geometry plus
// everything that changes what workers compute. A checkpoint written
// under a different digest is for a different sweep and must not be
// resumed into this one.
func planDigest(idx *trace.BETRIndex, specs []CodecSpec, verify int, perLine bool, kernel int) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	enc.Encode(idx)
	enc.Encode(specs)
	enc.Encode([]int{verify, kernel})
	enc.Encode(perLine)
	return hex.EncodeToString(h.Sum(nil))
}

// openCheckpoint loads any prior journal state and opens the journal
// for appending, writing the plan header if the file is fresh.
func openCheckpoint(path, digest string, plan *planned, shards int, specs []CodecSpec) (*journalState, *journal, error) {
	if path == "" {
		return &journalState{boundary: map[int]map[string][]byte{}, done: map[int]map[string]bus.Stats{}}, nil, nil
	}
	prior, err := loadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if prior.header.Type != "" && prior.header.PlanDigest != digest {
		return nil, nil, fmt.Errorf("dist: checkpoint %s was written for a different plan (digest %.12s, want %.12s); remove it or rerun the original sweep",
			path, prior.header.PlanDigest, digest)
	}
	jr, err := openJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if prior.header.Type == "" {
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.Name
		}
		if err := jr.append(journalRec{
			Type: recPlan, PlanDigest: digest, Trace: plan.path,
			Total: plan.idx.Total, Shards: shards, Codecs: names,
		}); err != nil {
			jr.Close()
			return nil, nil, err
		}
	}
	RecordResume(len(prior.done))
	return prior, jr, nil
}

// boundaryStates returns, for each shard, the marshaled boundary state
// per prefix-dependent codec — from the journal when a previous
// coordinator already swept, otherwise by running codec.BoundaryStates
// over the decoded stream and journaling the product.
func boundaryStates(plan *planned, specs []CodecSpec, shards int, prior *journalState, jr *journal) ([]map[string][]byte, error) {
	out := make([]map[string][]byte, shards)
	// Which codecs even need a sweep? Seeder codecs seed from the
	// descriptor's boundary entries alone.
	var sweepSpecs []CodecSpec
	for _, cs := range specs {
		c, err := cs.New()
		if err != nil {
			return nil, err
		}
		if _, ok := c.NewEncoder().(codec.Seeder); !ok {
			sweepSpecs = append(sweepSpecs, cs)
		}
	}
	if len(sweepSpecs) == 0 {
		return out, nil
	}
	if len(prior.boundary) == shards {
		complete := true
		for k := 0; k < shards && complete; k++ {
			states := prior.boundary[k]
			for _, cs := range sweepSpecs {
				if _, ok := states[cs.Name]; !ok && needsState(plan, k) {
					complete = false
					break
				}
			}
			out[k] = states
		}
		if complete {
			return out, nil
		}
	}
	// Decode the stream once, sweep every prefix-dependent codec.
	r, err := trace.NewMemRangeReader(plan.data, plan.idx.Name, plan.idx.Width, plan.idx.Cuts[0], plan.idx.Total, plan.path, nil)
	if err != nil {
		return nil, err
	}
	s, err := trace.ReadAll(r)
	if err != nil {
		return nil, err
	}
	cuts := make([]int, shards+1)
	for k := range cuts {
		cuts[k] = int(plan.idx.Cuts[k].Entry)
	}
	perCodec := make(map[string][][]byte, len(sweepSpecs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(sweepSpecs))
	for i, cs := range sweepSpecs {
		wg.Add(1)
		go func(i int, cs CodecSpec) {
			defer wg.Done()
			c, err := cs.New()
			if err == nil {
				var states [][]byte
				states, err = codec.BoundaryStates(c, s.Entries, cuts)
				if err == nil {
					mu.Lock()
					perCodec[cs.Name] = states
					mu.Unlock()
				}
			}
			errs[i] = err
		}(i, cs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	RecordSeedSweep(int64(len(s.Entries)) * int64(len(sweepSpecs)))
	for k := 0; k < shards; k++ {
		states := map[string][]byte{}
		for name, sts := range perCodec {
			if st := sts[k]; st != nil {
				states[name] = st
			}
		}
		out[k] = states
		if jr != nil {
			if err := jr.append(journalRec{Type: recBoundary, Shard: k, States: states}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// needsState reports whether shard k of the plan starts mid-stream —
// only such shards require an explicit boundary state.
func needsState(plan *planned, k int) bool {
	return plan.idx.Cuts[k].Entry > 0 && plan.idx.Cuts[k].Entry < plan.idx.Cuts[k+1].Entry
}

// buildJob assembles the wire job for one shard.
func buildJob(plan *planned, opts Opts, shard int, states map[string][]byte) *Job {
	cjs := make([]CodecJob, len(opts.Codecs))
	for i, cs := range opts.Codecs {
		cjs[i] = CodecJob{Spec: cs, State: states[cs.Name]}
	}
	cut := plan.idx.Cuts[shard]
	return &Job{
		TracePath: plan.path,
		Stream:    plan.idx.Name,
		Width:     plan.idx.Width,
		Shard:     shard,
		Cut:       cut,
		N:         plan.idx.Cuts[shard+1].Entry - cut.Entry,
		Codecs:    cjs,
		Verify:    int(opts.Verify),
		PerLine:   opts.PerLine,
		Kernel:    int(opts.Kernel),
	}
}

// mergeStats rebuilds per-shard buses from the returned stats and
// merges them ascending, per codec, into final Results.
func mergeStats(plan *planned, specs []CodecSpec, stats []map[string]bus.Stats) ([]codec.Result, error) {
	results := make([]codec.Result, len(specs))
	for i, cs := range specs {
		c, err := cs.New()
		if err != nil {
			return nil, err
		}
		slots := make([]*bus.Bus, len(stats))
		for k, st := range stats {
			s, ok := st[cs.Name]
			if !ok {
				return nil, fmt.Errorf("dist: shard %d returned no stats for codec %s", k, cs.Name)
			}
			b, err := bus.FromStats(c.BusWidth(), s)
			if err != nil {
				return nil, fmt.Errorf("dist: shard %d codec %s: %w", k, cs.Name, err)
			}
			slots[k] = b
		}
		merged, err := bus.MergeSlots(slots, nil)
		if err != nil {
			return nil, err
		}
		results[i] = codec.Result{
			Codec:       cs.Name,
			Stream:      plan.idx.Name,
			BusWidth:    c.BusWidth(),
			Transitions: merged.Transitions(),
			Cycles:      merged.Cycles(),
			PerLine:     merged.PerLine(),
			MaxPerCycle: merged.MaxPerCycle(),
		}
	}
	return results, nil
}

// AllSpecs returns specs for every registered codec at the given width
// with zero-value options, sorted by name — the default codec set of
// cmd/busencsweep and the dist tests.
func AllSpecs(width int) []CodecSpec {
	names := codec.Names()
	sort.Strings(names)
	specs := make([]CodecSpec, len(names))
	for i, n := range names {
		specs[i] = CodecSpec{Name: n, Width: width}
	}
	return specs
}
