package dist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"busenc/internal/obs"
)

// Network transport: the coordinator prices shards on remote busencd
// peers. The peer side is internal/serve's /dist endpoint — a hijacked
// HTTP upgrade that then speaks the exact stdin/stdout frame protocol
// (same framing, same 64MB cap, same hello/ping/job/result/shutdown
// messages), so a TCP peer is indistinguishable from a local worker
// process above the Transport interface. The one wire difference is
// trace addressing: peers cannot see the coordinator's filesystem, so
// the trace ships once by SHA-256 digest into the peer's
// content-addressed store (POST /traces, deduplicated — re-sweeping a
// shipped trace moves zero trace bytes) and jobs carry the
// "sha256:..." ref instead of a path.

// UpgradeProtocol is the Upgrade header token of the /dist handshake.
const UpgradeProtocol = "busenc-dist"

// dialTimeout bounds the TCP connect plus the 101 upgrade exchange;
// shard pricing itself is governed by heartbeats, not deadlines.
const dialTimeout = 10 * time.Second

// NetStats accumulates network-transport counters for one sweep. The
// counter fields are atomics: the framing layer and every slot
// goroutine add concurrently. The same numbers feed the gated
// dist.net.* metrics. Per-worker clock-offset estimates (one sample
// per ping/pong round trip, narrowest RTT retained) live behind the
// mutex.
type NetStats struct {
	FramesSent        atomic.Int64
	FramesRecv        atomic.Int64
	BytesSent         atomic.Int64
	BytesRecv         atomic.Int64
	TraceShipBytes    atomic.Int64 // trace bytes uploaded to peers
	TraceDedupHits    atomic.Int64 // peers that already held the digest
	Redispatches      atomic.Int64 // shards requeued after a worker death
	HeartbeatTimeouts atomic.Int64

	mu     sync.Mutex
	clocks map[string]ClockEstimate // worker "host/pid" -> best offset estimate
}

// RecordClockSample folds one RTT-midpoint offset sample for a worker
// in, keeping the estimate from the narrowest round trip.
func (ns *NetStats) RecordClockSample(key string, offsetNs, rttNs int64) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.clocks == nil {
		ns.clocks = make(map[string]ClockEstimate)
	}
	e, ok := ns.clocks[key]
	if !ok || rttNs < e.RTTNs {
		e.OffsetNs = offsetNs
		e.RTTNs = rttNs
	}
	e.Samples++
	ns.clocks[key] = e
}

// Clocks returns a copy of the per-worker clock estimates.
func (ns *NetStats) Clocks() map[string]ClockEstimate {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make(map[string]ClockEstimate, len(ns.clocks))
	for k, v := range ns.clocks {
		out[k] = v
	}
	return out
}

// PeerHealth is the GET /healthz reply of a busencd peer — the
// capability half of the peer handshake. The coordinator refuses peers
// whose protocol version differs; everything else is informational.
type PeerHealth struct {
	Status       string   `json:"status"` // "ok" or "draining"
	ProtoVersion int      `json:"proto_version"`
	GoMaxProcs   int      `json:"gomaxprocs"`
	Kernels      []string `json:"kernels"`
	Codecs       int      `json:"codecs"`
}

// healthClient bounds the handshake round trips; uploads use a
// transport without an overall deadline (a big trace may take a while)
// but inherit the dial timeout.
var healthClient = &http.Client{Timeout: dialTimeout}

var shipClient = &http.Client{Transport: &http.Transport{
	DialContext: (&net.Dialer{Timeout: dialTimeout}).DialContext,
}}

// checkPeer performs the capability handshake with one peer.
func checkPeer(addr string) (PeerHealth, error) {
	resp, err := healthClient.Get("http://" + addr + "/healthz")
	if err != nil {
		return PeerHealth{}, fmt.Errorf("dist: peer %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PeerHealth{}, fmt.Errorf("dist: peer %s: /healthz returned %s", addr, resp.Status)
	}
	var h PeerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return PeerHealth{}, fmt.Errorf("dist: peer %s: bad /healthz body: %w", addr, err)
	}
	if h.ProtoVersion != ProtoVersion {
		return PeerHealth{}, fmt.Errorf("dist: peer %s speaks protocol %d, want %d", addr, h.ProtoVersion, ProtoVersion)
	}
	if h.Status != "ok" {
		return PeerHealth{}, fmt.Errorf("dist: peer %s is %s", addr, h.Status)
	}
	return h, nil
}

// shipTrace makes the planned trace available on every peer and
// returns its content address. Each peer is probed first (GET
// /traces/{digest}): a hit means the peer already holds the bytes and
// nothing ships — the dedup property the re-sweep benchmarks assert.
func shipTrace(root obs.SpanHandle, plan *planned, peers []string, ns *NetStats) (string, error) {
	sp := root.Child("dist.net.ship", obs.StageNet)
	sum := sha256.Sum256(plan.data)
	ref := "sha256:" + hex.EncodeToString(sum[:])
	for _, addr := range peers {
		if _, err := checkPeer(addr); err != nil {
			sp.EndErr(err)
			return "", err
		}
		have, err := peerHasTrace(addr, ref)
		if err != nil {
			sp.EndErr(err)
			return "", err
		}
		if have {
			ns.TraceDedupHits.Add(1)
			recordTraceDedup()
			continue
		}
		if err := uploadTrace(addr, ref, plan.data, ns); err != nil {
			sp.EndErr(err)
			return "", err
		}
	}
	sp.End()
	return ref, nil
}

// peerHasTrace probes the peer's store for a digest.
func peerHasTrace(addr, ref string) (bool, error) {
	resp, err := healthClient.Get("http://" + addr + "/traces/" + ref)
	if err != nil {
		return false, fmt.Errorf("dist: peer %s: %w", addr, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("dist: peer %s: trace probe returned %s", addr, resp.Status)
	}
}

// uploadTrace POSTs the raw trace bytes and verifies the peer stored
// them under the expected address — a digest mismatch means the bytes
// were corrupted in flight and pricing against them would be silent
// garbage.
func uploadTrace(addr, ref string, data []byte, ns *NetStats) error {
	resp, err := shipClient.Post("http://"+addr+"/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("dist: peer %s: upload: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: peer %s: upload returned %s: %s", addr, resp.Status, bytes.TrimSpace(body))
	}
	var meta struct {
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return fmt.Errorf("dist: peer %s: bad upload reply: %w", addr, err)
	}
	if meta.Digest != ref {
		return fmt.Errorf("dist: peer %s stored digest %.19s, want %.19s", addr, meta.Digest, ref)
	}
	ns.TraceShipBytes.Add(int64(len(data)))
	recordTraceShip(len(data))
	return nil
}

// tcpTransport is one upgraded /dist connection.
type tcpTransport struct {
	nc net.Conn
	c  *conn
}

func (t *tcpTransport) Send(m msg) error   { return t.c.send(m) }
func (t *tcpTransport) Recv() (msg, error) { return t.c.recv() }
func (t *tcpTransport) Close() error       { return t.nc.Close() }

// dialDist opens one worker connection to a peer: TCP connect, a
// hand-rolled HTTP/1.1 Upgrade to the busenc-dist protocol, then the
// framed byte stream. The response's buffered reader is kept — frames
// the peer wrote right after the 101 may already sit in it.
func dialDist(addr string, ns *NetStats) (Transport, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dist: peer %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(dialTimeout))
	req := fmt.Sprintf("GET /dist HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n", addr, UpgradeProtocol)
	if _, err := io.WriteString(nc, req); err != nil {
		nc.Close()
		return nil, fmt.Errorf("dist: peer %s: upgrade write: %w", addr, err)
	}
	br := bufio.NewReaderSize(nc, 1<<16)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("dist: peer %s: upgrade read: %w", addr, err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		nc.Close()
		return nil, fmt.Errorf("dist: peer %s: upgrade refused: %s: %s", addr, resp.Status, bytes.TrimSpace(body))
	}
	nc.SetDeadline(time.Time{})
	c := newConn(br, nc)
	c.stats = ns
	return &tcpTransport{nc: nc, c: c}, nil
}

// peerSpawner adapts one peer address to the Spawner interface: every
// (re)spawn of the slot is a fresh /dist connection.
func peerSpawner(addr string, ns *NetStats) Spawner {
	return SpawnerFunc(func(id, gen int) (Transport, error) {
		sp := obs.StartSpan("dist.net.dial", obs.StageNet).WithStream(addr)
		t, err := dialDist(addr, ns)
		sp.EndErr(err)
		return t, err
	})
}
