// Package dist prices huge traces across worker processes. The
// coordinator plans a BETR (or text, converted once) trace into
// contiguous byte-range shards over one shared mmap view — no shard
// files are written — runs the cheap state-only boundary sweep that
// makes mid-stream shards exact (see codec.Boundary), fans the shards
// out to a pool of workers over a stdin/stdout framed protocol, and
// merges the returned bus accumulators deterministically in ascending
// shard order, so the distributed result is bit-identical to
// codec.RunFast. A journal-based checkpoint makes a killed sweep
// resumable: per-shard boundary states and result digests are fsync'd
// as they are produced, and a restarted coordinator re-plans, verifies
// the plan digest, and prices only the shards the journal does not
// already hold.
package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"busenc/internal/bus"
	"busenc/internal/codec"
	"busenc/internal/trace"
)

// Wire protocol: 4-byte big-endian length followed by one JSON message.
// The framing exists so a worker crash mid-write is a short read at the
// coordinator, never a half-parsed message. Both sides are built from
// the same binary (a worker is the coordinator re-executed with a
// -worker flag), so the message schema needs no versioning beyond the
// hello exchange.

// maxFrame bounds a single message. Jobs carry only descriptors and
// marshaled encoder states; results carry per-codec bus statistics
// (per-line slices at most), so frames are small — the cap catches a
// desynced stream, not a real payload.
const maxFrame = 64 << 20

// Message types.
const (
	msgHello    = "hello"
	msgPing     = "ping"
	msgPong     = "pong"
	msgJob      = "job"
	msgResult   = "result"
	msgShutdown = "shutdown"
	msgSpans    = "spans"
)

// ProtoVersion is bumped whenever the job or result schema — or the
// dispatch contract — changes incompatibly. The hello handshake (and
// the /healthz peer handshake in internal/serve) rejects mismatches
// loudly instead of mispricing quietly. Version 2 introduced pipelined
// dispatch: a worker must answer pings concurrently with pricing, and
// may hold several jobs in flight. Version 3 added distributed
// tracing: hellos carry the worker's hostname, pongs carry the
// worker's wall clock (the coordinator's clock-offset sample), jobs
// carry trace/parent-span context, and a spans request/reply pair
// harvests the worker's tagged spans before shutdown.
const ProtoVersion = 3

// msg is the single envelope every frame carries.
type msg struct {
	Type    string       `json:"type"`
	Version int          `json:"version,omitempty"` // hello
	PID     int          `json:"pid,omitempty"`     // hello
	Host    string       `json:"host,omitempty"`    // hello
	Now     int64        `json:"now,omitempty"`     // pong: worker wall clock, unix ns
	Trace   string       `json:"trace,omitempty"`   // spans request: trace ID to dump
	Job     *Job         `json:"job,omitempty"`
	Result  *ShardResult `json:"result,omitempty"`
	Spans   *SpanDump    `json:"spans,omitempty"` // spans reply
}

// CodecSpec names a codec and the knobs needed to reconstruct it in
// another process. It is codec.Options minus Train: the Beach training
// stream is not serializable, so distributed sweeps reject trained
// Beach codecs at plan time.
type CodecSpec struct {
	Name       string `json:"name"`
	Width      int    `json:"width"`
	Stride     uint64 `json:"stride,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	Zones      int    `json:"zones,omitempty"`
	ZoneBits   int    `json:"zone_bits,omitempty"`
	Entries    int    `json:"entries,omitempty"`
}

// New constructs the codec the spec describes.
func (cs CodecSpec) New() (codec.Codec, error) {
	return codec.New(cs.Name, cs.Width, codec.Options{
		Stride:     cs.Stride,
		Partitions: cs.Partitions,
		Zones:      cs.Zones,
		ZoneBits:   cs.ZoneBits,
		Entries:    cs.Entries,
	})
}

// SpecFor derives the wire spec for a codec constructed with opts.
// Train must be nil: a profiling stream cannot cross the process
// boundary.
func SpecFor(name string, width int, opts codec.Options) (CodecSpec, error) {
	if opts.Train != nil {
		return CodecSpec{}, fmt.Errorf("dist: codec %s: training streams are not distributable", name)
	}
	return CodecSpec{
		Name:       name,
		Width:      width,
		Stride:     opts.Stride,
		Partitions: opts.Partitions,
		Zones:      opts.Zones,
		ZoneBits:   opts.ZoneBits,
		Entries:    opts.Entries,
	}, nil
}

// CodecJob pairs a codec spec with the shard's marshaled boundary
// state for it (nil for Seeder codecs and for shard 0).
type CodecJob struct {
	Spec  CodecSpec `json:"spec"`
	State []byte    `json:"state,omitempty"`
}

// Job prices one shard of the trace for every requested codec. The
// shard is a byte range of the (shared, mmap'd) trace file — the worker
// re-opens the same file and decodes only its range, so nothing is
// copied through the pipe.
type Job struct {
	TracePath string         `json:"trace_path"`
	Stream    string         `json:"stream"`
	Width     int            `json:"width"`
	Shard     int            `json:"shard"`
	Cut       trace.RangeCut `json:"cut"`
	N         int64          `json:"n"` // entries in the shard
	Codecs    []CodecJob     `json:"codecs"`
	Verify    int            `json:"verify"`
	PerLine   bool           `json:"per_line"`
	Kernel    int            `json:"kernel"`
	// Trace and Span carry the coordinator's distributed-trace context:
	// the sweep-wide trace ID and the coordinator-side dist.shard span
	// the worker's spans should parent to. Empty/zero when the sweep is
	// not harvesting spans.
	Trace string `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`
}

// ShardResult carries one shard's accumulators back: a bus.Stats
// snapshot per codec (keyed by codec name), or the first error the
// shard hit. Err positions are global entry indices, identical to a
// sequential run's.
type ShardResult struct {
	Shard int                  `json:"shard"`
	Stats map[string]bus.Stats `json:"stats,omitempty"`
	Err   string               `json:"err,omitempty"`
}

// conn frames messages over a byte stream. stats is non-nil only on
// network transports: the framing layer is where every frame and byte
// crossing the wire is visible, so the dist.net.* counters hook here.
type conn struct {
	r     *bufio.Reader
	w     io.Writer
	buf   []byte
	stats *NetStats
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{r: bufio.NewReaderSize(r, 1<<16), w: w}
}

// send writes one framed message. Errors mean the peer is gone.
func (c *conn) send(m msg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	if c.stats != nil {
		c.stats.FramesSent.Add(1)
		c.stats.BytesSent.Add(int64(4 + len(body)))
		recordNetSend(4 + len(body))
	}
	return nil
}

// recv reads one framed message. io.EOF (possibly wrapped as
// io.ErrUnexpectedEOF mid-frame) means the peer exited.
func (c *conn) recv() (msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return msg{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return msg{}, fmt.Errorf("dist: %d-byte frame exceeds limit", n)
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	body := c.buf[:n]
	if _, err := io.ReadFull(c.r, body); err != nil {
		return msg{}, err
	}
	var m msg
	if err := json.Unmarshal(body, &m); err != nil {
		return msg{}, fmt.Errorf("dist: bad frame: %w", err)
	}
	if c.stats != nil {
		c.stats.FramesRecv.Add(1)
		c.stats.BytesRecv.Add(int64(4 + n))
		recordNetRecv(4 + int(n))
	}
	return m, nil
}
