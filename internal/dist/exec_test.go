package dist

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"busenc/internal/codec"
)

// The exec-path tests run real worker subprocesses by re-executing the
// test binary: TestMain checks BUSENC_DIST_WORKER and, when set, turns
// the process into a protocol worker on stdin/stdout instead of a test
// run. BUSENC_DIST_FAILAFTER carries the fault injection across exec.

const (
	workerEnv    = "BUSENC_DIST_WORKER"
	failAfterEnv = "BUSENC_DIST_FAILAFTER"
)

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		fa, _ := strconv.Atoi(os.Getenv(failAfterEnv))
		if err := ServeWorker(os.Stdin, os.Stdout, WorkerOpts{FailAfter: fa}); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execSelfSpawner spawns this test binary as a worker process.
// failAfterFor, when non-nil, picks the injected fault per (id, gen).
func execSelfSpawner(t *testing.T, failAfterFor func(id, gen int) int) Spawner {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return SpawnerFunc(func(id, gen int) (Transport, error) {
		env := []string{workerEnv + "=1"}
		if failAfterFor != nil {
			if fa := failAfterFor(id, gen); fa > 0 {
				env = append(env, failAfterEnv+"="+strconv.Itoa(fa))
			}
		}
		return ExecSpawner([]string{self}, env).Spawn(id, gen)
	})
}

// TestSweepExecWorkers: parity through real worker processes — the
// full pipeline of descriptor serialization, state marshaling, mmap
// sharing and frame transport.
func TestSweepExecWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess sweep in -short mode")
	}
	const width = 32
	s := mixStream(width, 20000, 52)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	res, err := Sweep(path, Opts{
		Workers: 3, Shards: 6, Codecs: specs, Verify: codec.VerifyNone,
		Spawn: execSelfSpawner(t, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
}

// TestDistSmoke is the CI smoke scenario (make dist-smoke): a 3-worker
// sweep over a 2^18-entry trace, one worker killed mid-sweep (exec
// fault injection), the coordinator stopped at a checkpoint, then a
// resumed sweep — whose merged results must be bit-identical to
// codec.RunFast for every registered codec.
func TestDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke in -short mode")
	}
	const width = 32
	s := mixStream(width, 1<<18, 53)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")

	// Phase 1: worker 1's first life dies after 2 jobs (retry-once
	// path), and the coordinator itself stops after 7 of 12 shards.
	opts := Opts{
		Workers: 3, Shards: 12, Codecs: specs, Verify: codec.VerifyNone,
		Checkpoint: ckpt, StopAfter: 7,
		Spawn: execSelfSpawner(t, func(id, gen int) int {
			if id == 1 && gen == 0 {
				return 2
			}
			return 0
		}),
	}
	if _, err := Sweep(path, opts); !errors.Is(err, ErrStopped) {
		t.Fatalf("phase 1: err = %v, want ErrStopped", err)
	}

	// Phase 2: resume with healthy workers; only the remaining shards
	// are priced.
	opts.StopAfter = 0
	opts.Spawn = execSelfSpawner(t, nil)
	res, err := Sweep(path, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
}
