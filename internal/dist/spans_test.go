package dist

import (
	"bytes"
	"os"
	"testing"
	"time"

	"busenc/internal/codec"
	"busenc/internal/obs"
)

// TestClockOffset pins the RTT-midpoint math on fake clocks.
func TestClockOffset(t *testing.T) {
	cases := []struct {
		name           string
		t0, t1, remote int64
		offset, rtt    int64
	}{
		// Symmetric path, remote clock 1s ahead: ping at 1000, pong
		// back at 1200, worker answered at local midpoint 1100 which
		// its own clock called 1_000_001_100.
		{"remote ahead", 1000, 1200, 1_000_001_100, -1_000_000_000, 200},
		// Remote clock 500ns behind: worker's midpoint reading is low,
		// so the offset is positive.
		{"remote behind", 1000, 1200, 600, 500, 200},
		// Perfectly synced clocks, zero RTT.
		{"synced", 1000, 1000, 1000, 0, 0},
		// Local clock stepped backwards mid-flight: RTT clamps to 0
		// instead of going negative.
		{"clock step", 1000, 900, 1000, 0, 0},
	}
	for _, c := range cases {
		off, rtt := clockOffset(c.t0, c.t1, c.remote)
		if off != c.offset || rtt != c.rtt {
			t.Errorf("%s: clockOffset(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.name, c.t0, c.t1, c.remote, off, rtt, c.offset, c.rtt)
		}
	}
	// Recovered offset maps worker wall clock onto coordinator wall
	// clock: a worker event at remote time now+x lands at local
	// midpoint+x.
	off, _ := clockOffset(2000, 2400, 5_000_000)
	if got := int64(5_000_123) + off; got != 2200+123 {
		t.Errorf("mapped instant = %d, want %d", got, 2200+123)
	}
}

// TestClockMinRTTRetention: both clock sinks keep the estimate from
// the narrowest round trip while counting every sample.
func TestClockMinRTTRetention(t *testing.T) {
	var h SpanHarvest
	var ns NetStats
	for _, s := range []struct{ off, rtt int64 }{
		{100, 900}, {42, 80}, {77, 500},
	} {
		h.recordClock("w/1", s.off, s.rtt)
		ns.RecordClockSample("w/1", s.off, s.rtt)
	}
	for name, got := range map[string]map[string]ClockEstimate{
		"harvest": h.Clocks(), "netstats": ns.Clocks(),
	} {
		e, ok := got["w/1"]
		if !ok {
			t.Fatalf("%s: no estimate for w/1", name)
		}
		if e.OffsetNs != 42 || e.RTTNs != 80 || e.Samples != 3 {
			t.Errorf("%s: estimate = %+v, want offset 42 rtt 80 samples 3", name, e)
		}
	}
}

// TestSpanHarvestDedup: dumps for the same worker merge with spans
// deduplicated by ID; Merged skips a dump whose host/pid is this
// process (an in-process worker sharing the coordinator's recorder).
func TestSpanHarvestDedup(t *testing.T) {
	var h SpanHarvest
	h.start("feed1234")
	h.addDump(&SpanDump{Trace: "feed1234", Host: "w", PID: 9, Epoch: 100, Spans: []obs.Span{{ID: 1}, {ID: 2}}})
	h.addDump(&SpanDump{Trace: "feed1234", Host: "w", PID: 9, Epoch: 100, Spans: []obs.Span{{ID: 2}, {ID: 3}}})
	host, _ := os.Hostname()
	h.addDump(&SpanDump{Trace: "feed1234", Host: host, PID: os.Getpid(), Spans: []obs.Span{{ID: 7}}})
	h.recordClock("w/9", 50, 10)

	procs := h.Merged([]obs.Span{{ID: 99}}, time.Unix(0, 1000))
	if len(procs) != 2 {
		t.Fatalf("procs = %d, want coordinator + 1 worker", len(procs))
	}
	if procs[0].EpochUnixNs != 1000 || len(procs[0].Spans) != 1 {
		t.Errorf("coordinator lane = %+v", procs[0])
	}
	w := procs[1]
	if w.Host != "w" || w.PID != 9 {
		t.Errorf("worker lane identity = %s/%d", w.Host, w.PID)
	}
	if len(w.Spans) != 3 {
		t.Errorf("worker spans = %d, want 3 after dedup", len(w.Spans))
	}
	if w.EpochUnixNs != 150 {
		t.Errorf("worker epoch = %d, want 100 + offset 50", w.EpochUnixNs)
	}
}

// TestSweepHarvestInProc: a harvested in-process sweep stays
// bit-identical to an unharvested one, mints a trace ID, tags the
// recorded spans with it, and Merged collapses the in-process workers
// into the coordinator's own lane.
func TestSweepHarvestInProc(t *testing.T) {
	const width = 32
	s := mixStream(width, 12000, 61)
	path := writeBETR(t, s)
	specs := AllSpecs(width)[:3]

	tr := obs.EnableTracing(obs.TracerConfig{})
	defer obs.DisableTracing()
	h := &SpanHarvest{}
	opts := Opts{
		Workers: 2, Shards: 4, Codecs: specs, Verify: codec.VerifyNone,
		Spawn: InProcSpawner(nil), Harvest: h,
	}
	res, err := Sweep(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))

	trace := h.TraceID()
	if len(trace) != 16 {
		t.Fatalf("trace ID = %q", trace)
	}
	spans := tr.Spans()
	byName := map[string]int{}
	for _, sp := range spans {
		if sp.Trace == trace {
			byName[sp.Name]++
		}
	}
	for _, want := range []string{"dist.sweep", "dist.shard", "dist.shard_price", "dist.codec_price", "dist.worker_conn"} {
		if byName[want] == 0 {
			t.Errorf("no %s span tagged with the trace (got %v)", want, byName)
		}
	}
	procs := h.Merged(spans, tr.Epoch())
	if len(procs) != 1 {
		t.Fatalf("in-process sweep merged into %d lanes, want 1 (self dumps skipped)", len(procs))
	}
}

// TestSweepHarvestExecWorkers is the end-to-end distributed-trace
// test: real worker subprocesses inherit the trace context over the
// wire, dump their spans back through the spans frame, and the merged
// timeline carries one clock-aligned pid lane per process — written
// twice, byte-identical.
func TestSweepHarvestExecWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess sweep in -short mode")
	}
	const width = 32
	s := mixStream(width, 20000, 62)
	path := writeBETR(t, s)
	specs := AllSpecs(width)[:3]

	tr := obs.EnableTracing(obs.TracerConfig{})
	defer obs.DisableTracing()
	h := &SpanHarvest{}
	res, err := Sweep(path, Opts{
		Workers: 2, Shards: 6, Codecs: specs, Verify: codec.VerifyNone,
		Spawn: execSelfSpawner(t, nil), Harvest: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))

	procs := h.Merged(tr.Spans(), tr.Epoch())
	if len(procs) != 3 {
		t.Fatalf("merged into %d lanes, want coordinator + 2 workers", len(procs))
	}
	clocks := h.Clocks()
	self := os.Getpid()
	for _, p := range procs[1:] {
		if p.PID == self {
			t.Errorf("worker lane claims the coordinator pid %d", self)
		}
		if len(p.Spans) == 0 {
			t.Errorf("worker lane %s has no spans", p.Label)
		}
		names := map[string]bool{}
		for _, sp := range p.Spans {
			if sp.Trace != h.TraceID() {
				t.Errorf("worker %s span %q not tagged with the trace", p.Label, sp.Name)
			}
			names[sp.Name] = true
		}
		for _, want := range []string{"dist.worker_conn", "dist.shard_price", "dist.codec_price"} {
			if !names[want] {
				t.Errorf("worker %s missing %s span", p.Label, want)
			}
		}
		key := workerKey(p.Host, p.PID)
		e, ok := clocks[key]
		if !ok || e.Samples == 0 {
			t.Errorf("no clock estimate for %s (clocks %v)", key, clocks)
		}
		// Same machine: the aligned epoch must sit within the sweep's
		// own wall-clock neighborhood, not a bogus offset away.
		if d := p.EpochUnixNs - tr.Epoch().UnixNano(); d < -int64(time.Minute) || d > int64(time.Minute) {
			t.Errorf("worker %s aligned epoch %d is %v away from the coordinator's", p.Label, p.EpochUnixNs, time.Duration(d))
		}
	}
	var a, b bytes.Buffer
	if err := obs.WriteMergedTraceEvents(&a, procs); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMergedTraceEvents(&b, procs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged trace not byte-identical across writes")
	}
}
