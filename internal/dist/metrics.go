package dist

import "busenc/internal/obs"

// Observability for the distributed sweep, in the same gated style as
// codec's: counters live in the default registry, cost one branch when
// metrics are disabled, and cover the lifecycle events the tests and
// the flight recorder care about — spawns, deaths, retries, journal
// activity — not per-entry work (the workers count that themselves).

// RecordPlan publishes one completed planning scan.
func RecordPlan(entries int64, shards int) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.plans").Inc()
	obs.GetGauge("dist.plan.shards").Set(int64(shards))
	obs.GetGauge("dist.plan.entries").Set(entries)
}

// RecordSeedSweep publishes the entries re-encoded by the coordinator's
// state-only boundary sweep (summed across prefix-dependent codecs).
func RecordSeedSweep(entries int64) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.seed_sweep.entries").Add(entries)
}

// RecordResume publishes how many shards a resumed sweep recovered from
// the checkpoint instead of re-pricing.
func RecordResume(shards int) {
	if !obs.Enabled() || shards == 0 {
		return
	}
	obs.GetCounter("dist.resume.shards_recovered").Add(int64(shards))
}

// RecordWorkerSpawn counts one worker (re)spawn.
func RecordWorkerSpawn() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.worker.spawns").Inc()
}

// RecordWorkerDeath counts one worker death observed by the
// coordinator (EOF or protocol failure with work possibly in flight).
func RecordWorkerDeath() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.worker.deaths").Inc()
}

// RecordShardRetry counts one shard re-dispatched after its worker
// died.
func RecordShardRetry() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.shard.retries").Inc()
}

// RecordShardDone counts one shard result accepted by the coordinator.
func RecordShardDone() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.shard.done").Inc()
}

// RecordHeartbeat counts one ping/pong round trip.
func RecordHeartbeat() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.heartbeats").Inc()
}

// dist.net.* counters cover the TCP peer transport: frame/byte volume
// at the framing layer, trace shipping and digest dedup at the store
// layer, and the supervision events (redispatch, heartbeat timeout)
// that make networked sweeps loss-free. They surface alongside every
// other counter in /metrics?format=prometheus and cmd/paper -metrics.

func recordNetSend(bytes int) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.frames_sent").Inc()
	obs.GetCounter("dist.net.bytes_sent").Add(int64(bytes))
}

func recordNetRecv(bytes int) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.frames_recv").Inc()
	obs.GetCounter("dist.net.bytes_recv").Add(int64(bytes))
}

// recordRedispatch counts one shard re-queued after its worker died or
// timed out (a subset of dist.shard.retries scoped to the dispatcher).
func recordRedispatch() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.redispatches").Inc()
}

// recordHeartbeatTimeout counts one worker declared dead for silence.
func recordHeartbeatTimeout() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.heartbeat_timeouts").Inc()
}

// recordTraceShip counts one trace upload to a peer.
func recordTraceShip(bytes int) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.trace_ship_bytes").Add(int64(bytes))
}

// recordTraceDedup counts one peer that already held the digest.
func recordTraceDedup() {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.trace_dedup_hits").Inc()
}

// recordClockSample publishes one RTT-midpoint clock-offset sample:
// the latest offset as a gauge (the number added to a worker's clock
// to reach the coordinator's) and the round trip it rode on into a
// histogram, so /metrics shows both the alignment and its error bound.
func recordClockSample(offsetNs, rttNs int64) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.clock_samples").Inc()
	obs.GetGauge("dist.net.clock_offset_ns").Set(offsetNs)
	obs.GetHistogram("dist.net.clock_rtt_ns").Observe(rttNs)
}

// recordSpanHarvest counts one span dump collected from a worker or
// peer at sweep end, and the spans it carried.
func recordSpanHarvest(spans int) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("dist.net.span_dumps").Inc()
	obs.GetCounter("dist.net.spans_harvested").Add(int64(spans))
}
