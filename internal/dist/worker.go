package dist

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"busenc/internal/bus"
	"busenc/internal/codec"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// WorkerOpts tunes ServeWorker.
type WorkerOpts struct {
	// FailAfter, when positive, makes the worker exit without replying
	// once it has priced that many jobs — the fault injection knob
	// behind the kill-a-worker-mid-sweep tests and the CLI's
	// -failafter flag. The coordinator sees a dead pipe with a job in
	// flight, exactly like a real crash.
	FailAfter int
	// StallAfter, when positive, makes the worker go silent once it
	// has priced that many jobs: it keeps reading frames (so the
	// coordinator's pipelined sends never block) but answers nothing,
	// not even pings — the fault injection knob behind the
	// heartbeat-timeout tests. A crash looks like EOF; a stall looks
	// like a wedged peer.
	StallAfter int
	// Resolve, when non-nil, maps Job.TracePath references to local
	// filesystem paths before mapping. The /dist endpoint uses it to
	// confine workers to the peer's content-addressed trace store
	// ("sha256:..." refs only); nil means paths are used as-is.
	Resolve func(ref string) (string, error)
}

// errFailInjected is returned by ServeWorker when FailAfter trips; the
// process wrapper turns it into a silent nonzero exit.
var errFailInjected = fmt.Errorf("dist: injected worker failure")

// ServeWorker runs the worker side of the shard protocol over the
// given byte streams (stdin/stdout for a real worker process, a
// hijacked TCP connection on a busencd peer, an in-memory pipe in
// tests): announce with a hello, then price every job the coordinator
// sends until shutdown or EOF. The coordinator pipelines: jobs arrive
// ahead of the results for earlier ones, and pings arrive while a
// shard is pricing — so a reader goroutine keeps draining frames
// (answering pings immediately) while the pricer works through the
// job queue in order. Trace views are mmap'd once per path and shared
// read-only through the page cache — a worker never copies shard
// bytes.
func ServeWorker(r io.Reader, w io.Writer, opts WorkerOpts) error {
	c := newConn(r, w)
	var wmu sync.Mutex // hello/pong/result writes interleave across goroutines
	send := func(m msg) error {
		wmu.Lock()
		defer wmu.Unlock()
		return c.send(m)
	}
	hostname, _ := os.Hostname()
	if err := send(msg{Type: msgHello, Version: ProtoVersion, PID: os.Getpid(), Host: hostname}); err != nil {
		return err
	}
	views := map[string]mappedView{}
	defer func() {
		for _, v := range views {
			v.closer.Close()
		}
	}()

	var stalled atomic.Bool
	var ct connTrace // the connection-bracket span for harvested sweeps
	defer ct.finish()
	jobs := make(chan *Job, 64)
	errc := make(chan error, 1)
	done := make(chan struct{})
	defer close(done) // unblocks the reader if the pricer exits first
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	go func() {
		defer close(jobs)
		for {
			m, err := c.recv()
			if err != nil {
				if err != io.EOF {
					fail(err)
				}
				return
			}
			switch m.Type {
			case msgPing:
				if stalled.Load() {
					continue
				}
				if err := send(msg{Type: msgPong, Now: time.Now().UnixNano()}); err != nil {
					fail(err)
					return
				}
			case msgSpans:
				if stalled.Load() {
					continue
				}
				// The coordinator only asks once its jobs are all
				// answered; close the connection-bracket span so the
				// dump includes it.
				ct.finish()
				if err := send(msg{Type: msgSpans, Spans: spanDump(m.Trace)}); err != nil {
					fail(err)
					return
				}
			case msgShutdown:
				return
			case msgJob:
				if m.Job == nil {
					fail(fmt.Errorf("dist: job frame without a job"))
					return
				}
				select {
				case jobs <- m.Job:
				case <-done:
					return
				}
			default:
				fail(fmt.Errorf("dist: unexpected %q frame", m.Type))
				return
			}
		}
	}()

	priced := 0
	for j := range jobs {
		if opts.FailAfter > 0 && priced >= opts.FailAfter {
			return errFailInjected
		}
		if opts.StallAfter > 0 && priced >= opts.StallAfter {
			stalled.Store(true)
			continue // swallow the job; keep draining frames silently
		}
		ct.begin(j.Trace)
		sp := obs.StartSpanCtx("dist.shard_price", obs.StageEncode,
			obs.SpanContext{Trace: j.Trace, Parent: j.Span}).WithShard(j.Shard).WithStream(j.Stream)
		res := priceJob(j, views, opts.Resolve, sp)
		if res.Err != "" {
			sp.EndErr(fmt.Errorf("%s", res.Err))
		} else {
			sp.End()
		}
		priced++
		if err := send(msg{Type: msgResult, Result: res}); err != nil {
			return err
		}
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// connTrace brackets one worker connection's traced lifetime with a
// dist.worker_conn span: begun on the first job that carries trace
// context, ended right before the spans dump (or on connection close).
// The span exists so every worker's pid lane in the merged timeline is
// covered end to end, not just during shard pricing — tracecheck's
// per-lane -mincover leans on it. begin also turns tracing on in
// worker processes that were started without it: the coordinator's
// choice to harvest is the worker's signal to record.
type connTrace struct {
	mu   sync.Mutex
	sp   obs.SpanHandle
	open bool
}

func (ct *connTrace) begin(trace string) {
	if trace == "" {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.open {
		return
	}
	if !obs.TracingEnabled() {
		obs.EnableTracing(obs.TracerConfig{})
	}
	ct.sp = obs.StartSpanCtx("dist.worker_conn", obs.StageEval, obs.SpanContext{Trace: trace})
	ct.open = true
}

func (ct *connTrace) finish() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.open {
		ct.sp.End()
		ct.open = false
	}
}

type mappedView struct {
	data   []byte
	closer io.Closer
}

// priceJob prices one shard for every codec in the job. Any error —
// resolving or opening the trace, decoding the range, a verification
// mismatch — is reported in the result rather than killing the worker,
// so a bad shard fails the sweep through the ordered merge (lowest
// shard wins) instead of looking like a worker crash. sp is the
// shard-level span (inert when the sweep is not harvesting); each
// codec prices under its own child so the merged timeline attributes
// time per codec per peer.
func priceJob(j *Job, views map[string]mappedView, resolve func(string) (string, error), sp obs.SpanHandle) *ShardResult {
	res := &ShardResult{Shard: j.Shard}
	v, ok := views[j.TracePath]
	if !ok {
		path := j.TracePath
		if resolve != nil {
			p, err := resolve(j.TracePath)
			if err != nil {
				res.Err = err.Error()
				return res
			}
			path = p
		}
		data, closer, err := trace.MapBytes(path)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		v = mappedView{data: data, closer: closer}
		views[j.TracePath] = v
	}
	r, err := trace.NewMemRangeReader(v.data, j.Stream, j.Width, j.Cut, j.N, j.TracePath, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	s, err := trace.ReadAll(r)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	opts := codec.ParallelOpts{
		Verify:  codec.VerifyMode(j.Verify),
		PerLine: j.PerLine,
		Kernel:  codec.Kernel(j.Kernel),
	}
	res.Stats = make(map[string]bus.Stats, len(j.Codecs))
	for _, cj := range j.Codecs {
		csp := sp.Child("dist.codec_price", obs.StageEncode).WithCodec(cj.Spec.Name)
		c, err := cj.Spec.New()
		if err != nil {
			csp.EndErr(err)
			res.Err = err.Error()
			return res
		}
		bd := codec.Boundary{First: j.Cut.Entry == 0}
		if !bd.First {
			bd.Prev = trace.Entry{Addr: j.Cut.PrevAddr, Kind: j.Cut.PrevKind}
			if j.Cut.Entry >= 2 {
				bd.SeedSym = codec.SymbolOf(trace.Entry{Addr: j.Cut.Prev2Addr, Kind: j.Cut.Prev2Kind})
				bd.HaveSeedSym = true
			}
			if len(cj.State) > 0 {
				st, err := codec.UnmarshalState(cj.State)
				if err != nil {
					csp.EndErr(err)
					res.Err = err.Error()
					return res
				}
				bd.State = st
			}
		}
		b, err := codec.PriceShard(c, s.Entries, bd, int(j.Cut.Entry), opts)
		if err != nil {
			csp.EndErr(err)
			res.Err = err.Error()
			return res
		}
		csp.End()
		res.Stats[cj.Spec.Name] = b.Stats()
	}
	return res
}
