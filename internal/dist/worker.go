package dist

import (
	"fmt"
	"io"
	"os"

	"busenc/internal/bus"
	"busenc/internal/codec"
	"busenc/internal/trace"
)

// WorkerOpts tunes ServeWorker.
type WorkerOpts struct {
	// FailAfter, when positive, makes the worker exit without replying
	// once it has priced that many jobs — the fault injection knob
	// behind the kill-a-worker-mid-sweep tests and the CLI's
	// -failafter flag. The coordinator sees a dead pipe with a job in
	// flight, exactly like a real crash.
	FailAfter int
}

// errFailInjected is returned by ServeWorker when FailAfter trips; the
// process wrapper turns it into a silent nonzero exit.
var errFailInjected = fmt.Errorf("dist: injected worker failure")

// ServeWorker runs the worker side of the shard protocol over the
// given byte streams (stdin/stdout for a real worker process, an
// in-memory pipe in tests): announce with a hello, then price every
// job the coordinator sends until shutdown or EOF. Trace views are
// mmap'd once per path and shared read-only with the coordinator
// through the page cache — a worker never copies shard bytes.
func ServeWorker(r io.Reader, w io.Writer, opts WorkerOpts) error {
	c := newConn(r, w)
	if err := c.send(msg{Type: msgHello, Version: protoVersion, PID: os.Getpid()}); err != nil {
		return err
	}
	views := map[string]mappedView{}
	defer func() {
		for _, v := range views {
			v.closer.Close()
		}
	}()
	jobs := 0
	for {
		m, err := c.recv()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator closed the pipe; clean exit
			}
			return err
		}
		switch m.Type {
		case msgPing:
			if err := c.send(msg{Type: msgPong}); err != nil {
				return err
			}
		case msgShutdown:
			return nil
		case msgJob:
			if m.Job == nil {
				return fmt.Errorf("dist: job frame without a job")
			}
			if opts.FailAfter > 0 && jobs >= opts.FailAfter {
				return errFailInjected
			}
			jobs++
			res := priceJob(m.Job, views)
			if err := c.send(msg{Type: msgResult, Result: res}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected %q frame", m.Type)
		}
	}
}

type mappedView struct {
	data   []byte
	closer io.Closer
}

// priceJob prices one shard for every codec in the job. Any error —
// opening the trace, decoding the range, a verification mismatch — is
// reported in the result rather than killing the worker, so a bad
// shard fails the sweep through the ordered merge (lowest shard wins)
// instead of looking like a worker crash.
func priceJob(j *Job, views map[string]mappedView) *ShardResult {
	res := &ShardResult{Shard: j.Shard}
	v, ok := views[j.TracePath]
	if !ok {
		data, closer, err := trace.MapBytes(j.TracePath)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		v = mappedView{data: data, closer: closer}
		views[j.TracePath] = v
	}
	r, err := trace.NewMemRangeReader(v.data, j.Stream, j.Width, j.Cut, j.N, j.TracePath, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	s, err := trace.ReadAll(r)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	opts := codec.ParallelOpts{
		Verify:  codec.VerifyMode(j.Verify),
		PerLine: j.PerLine,
		Kernel:  codec.Kernel(j.Kernel),
	}
	res.Stats = make(map[string]bus.Stats, len(j.Codecs))
	for _, cj := range j.Codecs {
		c, err := cj.Spec.New()
		if err != nil {
			res.Err = err.Error()
			return res
		}
		bd := codec.Boundary{First: j.Cut.Entry == 0}
		if !bd.First {
			bd.Prev = trace.Entry{Addr: j.Cut.PrevAddr, Kind: j.Cut.PrevKind}
			if j.Cut.Entry >= 2 {
				bd.SeedSym = codec.SymbolOf(trace.Entry{Addr: j.Cut.Prev2Addr, Kind: j.Cut.Prev2Kind})
				bd.HaveSeedSym = true
			}
			if len(cj.State) > 0 {
				st, err := codec.UnmarshalState(cj.State)
				if err != nil {
					res.Err = err.Error()
					return res
				}
				bd.State = st
			}
		}
		b, err := codec.PriceShard(c, s.Entries, bd, int(j.Cut.Entry), opts)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Stats[cj.Spec.Name] = b.Stats()
	}
	return res
}
