package dist

import (
	"fmt"
	"io"
)

// heartbeatEvery is how many jobs a worker prices between ping/pong
// liveness checks. Every spawn also begins with one, so a worker that
// starts but cannot speak the protocol is caught before it is handed a
// shard.
const heartbeatEvery = 16

// workerSlot is one position in the pool, surviving the workers that
// fill it: when the current worker dies the slot respawns (gen+1) and
// the in-flight shard is retried, up to retryLimit retries per shard.
type workerSlot struct {
	id         int
	gen        int
	sp         Spawner
	t          Transport
	retryLimit int
	sincePing  int
}

func newWorkerSlot(id int, sp Spawner, retryLimit int) *workerSlot {
	return &workerSlot{id: id, sp: sp, retryLimit: retryLimit}
}

// ensure has a live, handshaken worker in the slot.
func (w *workerSlot) ensure() error {
	if w.t != nil {
		return nil
	}
	t, err := w.sp.Spawn(w.id, w.gen)
	if err != nil {
		return fmt.Errorf("dist: spawn worker %d (gen %d): %w", w.id, w.gen, err)
	}
	RecordWorkerSpawn()
	m, err := t.Recv()
	if err == nil && (m.Type != msgHello || m.Version != protoVersion) {
		err = fmt.Errorf("dist: worker %d: bad hello (type %q version %d, want %d)", w.id, m.Type, m.Version, protoVersion)
	}
	if err == nil {
		err = pingPong(t)
	}
	if err != nil {
		t.Close()
		return fmt.Errorf("dist: worker %d handshake: %w", w.id, err)
	}
	w.t = t
	w.sincePing = 0
	return nil
}

// pingPong is one heartbeat round trip.
func pingPong(t Transport) error {
	if err := t.Send(msg{Type: msgPing}); err != nil {
		return err
	}
	m, err := t.Recv()
	if err != nil {
		return err
	}
	if m.Type != msgPong {
		return fmt.Errorf("dist: %q in reply to ping", m.Type)
	}
	RecordHeartbeat()
	return nil
}

// price runs one job on the slot's worker, respawning and retrying on
// worker death until the shard's retry budget is spent. The returned
// error is an infrastructure failure (the sweep cannot finish), never
// a pricing error — those travel inside the ShardResult.
func (w *workerSlot) price(j *Job) (*ShardResult, error) {
	retries := 0
	for {
		res, err := w.tryPrice(j)
		if err == nil {
			return res, nil
		}
		RecordWorkerDeath()
		if w.t != nil {
			w.t.Close()
			w.t = nil
		}
		w.gen++
		if retries >= w.retryLimit {
			return nil, fmt.Errorf("dist: shard %d: worker %d died %d times (last: %v)", j.Shard, w.id, retries+1, err)
		}
		retries++
		RecordShardRetry()
	}
}

// tryPrice is one attempt: ensure a worker, heartbeat if due, send the
// job, wait for the result. Any transport error means the worker died.
func (w *workerSlot) tryPrice(j *Job) (*ShardResult, error) {
	if err := w.ensure(); err != nil {
		return nil, err
	}
	if w.sincePing >= heartbeatEvery {
		if err := pingPong(w.t); err != nil {
			return nil, err
		}
		w.sincePing = 0
	}
	if err := w.t.Send(msg{Type: msgJob, Job: j}); err != nil {
		return nil, err
	}
	m, err := w.t.Recv()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("dist: worker %d exited with shard %d in flight", w.id, j.Shard)
		}
		return nil, err
	}
	if m.Type != msgResult || m.Result == nil {
		return nil, fmt.Errorf("dist: worker %d: %q frame in reply to job", w.id, m.Type)
	}
	if m.Result.Shard != j.Shard {
		return nil, fmt.Errorf("dist: worker %d: result for shard %d, want %d", w.id, m.Result.Shard, j.Shard)
	}
	w.sincePing++
	return m.Result, nil
}

// close shuts the slot's worker down politely; errors are irrelevant
// (the worker may already be gone).
func (w *workerSlot) close() {
	if w.t == nil {
		return
	}
	w.t.Send(msg{Type: msgShutdown})
	w.t.Close()
	w.t = nil
}
