package dist

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"busenc/internal/bus"
	"busenc/internal/obs"
)

// Pipelined dispatch. Every slot — a local worker process or a TCP
// busencd peer — keeps up to Window shards in flight at once: jobs are
// written ahead of results, so transport latency overlaps with pricing
// instead of serializing it. Shards live on one shared work queue;
// when a worker dies (EOF, protocol error, or heartbeat timeout) its
// in-flight shards go back on the queue and any slot — typically a
// different one — re-prices them, bounded by the per-shard retry
// budget. Determinism is untouched: results land in fixed per-shard
// slots and merge in ascending shard order, so the schedule (and the
// window size) cannot change the totals.

const (
	// DefaultWindow is the per-slot in-flight bound when Opts.Window is
	// unset. Four shards hides one round trip of latency at typical
	// shard runtimes without letting a slow peer hoard the queue.
	DefaultWindow = 4
	// DefaultHeartbeatInterval is how often an in-flight slot pings its
	// worker when Opts.HeartbeatInterval is unset.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultHeartbeatTimeout is how long a slot tolerates total
	// silence (no result, no pong) before declaring the worker dead and
	// re-dispatching its shards.
	DefaultHeartbeatTimeout = 10 * time.Second
)

// Delivery kinds: every slot-to-coordinator event is one of these.
const (
	dResult   = iota // a shard priced (stats or a shard-level error)
	dRequeue         // a shard orphaned by a worker death or spawn failure
	dSlotDead        // a slot retired after exhausting its spawn budget
)

// delivery is one event funneled back to the coordinator goroutine,
// which owns all shard bookkeeping (attempts, journal, completion).
type delivery struct {
	kind      int
	shard     int
	slot      int
	stats     map[string]bus.Stats
	err       error
	spawnFail bool // dRequeue: the spawn failed, no worker ever held the shard
}

// slotConfig describes one pool position. Local workers carry just the
// spawner; peer slots add the digest ref that replaces Job.TracePath
// on the wire (the peer resolves it in its content-addressed store).
type slotConfig struct {
	spawn Spawner
	ref   string
}

// dispatcher owns the shared state of one dispatch run.
type dispatcher struct {
	root   obs.SpanHandle
	plan   *planned
	opts   Opts
	states []map[string][]byte

	window     int
	hbEvery    time.Duration
	hbTimeout  time.Duration
	retryLimit int
	net        *NetStats
	harvest    *SpanHarvest

	// work is the shard queue. Buffered to the shard count and never
	// closed: slots learn the sweep is over from stop, not from the
	// queue draining (a requeue can refill it at any time).
	work chan int
	// deliveries is buffered generously so slots rarely block handing
	// events back; deliver falls back to a stop-guarded send, so after
	// halt nothing can deadlock against the coordinator.
	deliveries chan delivery
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

func (d *dispatcher) halt() { d.stopOnce.Do(func() { close(d.stop) }) }

// deliver hands an event to the coordinator without ever deadlocking a
// slot: before halt the coordinator is draining, after halt the stop
// case lets the slot move on (post-halt events are opportunistic).
func (d *dispatcher) deliver(dl delivery) {
	select {
	case d.deliveries <- dl:
	default:
		select {
		case d.deliveries <- dl:
		case <-d.stop:
		}
	}
}

// recvFrame is one transport read, shipped from a slot's reader
// goroutine into its select loop.
type recvFrame struct {
	m   msg
	err error
}

// slot is one pool position, surviving the workers that fill it. All
// fields are owned by the slot's goroutine; communication happens over
// the dispatcher's channels.
type slot struct {
	d          *dispatcher
	id         int
	cfg        slotConfig
	gen        int
	spawnFails int
	t          Transport
	frames     chan recvFrame
	readerDead bool // the reader goroutine's terminal error frame was consumed
	inflight   map[int]obs.SpanHandle
	lastRecv   time.Time
	worker     string // "host/pid" of the current worker, from its hello
	pingSent   int64  // unix ns of the unanswered heartbeat ping, 0 when none
}

// recordClock funnels one clock-offset sample everywhere it is wanted:
// the caller's NetStats, the sweep's span harvest, and the gated
// dist.net.clock_* metrics.
func (sl *slot) recordClock(offsetNs, rttNs int64) {
	if sl.worker == "" {
		return
	}
	if sl.d.net != nil {
		sl.d.net.RecordClockSample(sl.worker, offsetNs, rttNs)
	}
	if sl.d.harvest != nil {
		sl.d.harvest.recordClock(sl.worker, offsetNs, rttNs)
	}
	recordClockSample(offsetNs, rttNs)
}

// run drives the slot until the sweep halts or its spawn budget is
// exhausted. A slot never spawns a worker before it has a shard for
// it, so an idle pool position costs nothing.
func (sl *slot) run() {
	defer sl.d.wg.Done()
	for {
		var first int
		select {
		case <-sl.d.stop:
			return
		case first = <-sl.d.work:
		}
		if !sl.serveFrom(first) {
			return
		}
	}
}

// serveFrom prices shards on one worker life after another, beginning
// with the given shard. After a worker death the slot respawns eagerly
// (gen+1) so the pool recovers its parallelism before more work
// arrives. Returns false when the slot must retire: the sweep halted,
// or consecutive spawn failures exhausted the budget.
func (sl *slot) serveFrom(first int) bool {
	pending := first
	for {
		select {
		case <-sl.d.stop:
			if pending >= 0 {
				sl.d.deliver(delivery{kind: dRequeue, shard: pending, slot: sl.id, err: ErrStopped})
			}
			return false
		default:
		}
		if err := sl.ensure(); err != nil {
			RecordWorkerDeath()
			sl.gen++
			sl.spawnFails++
			if pending >= 0 {
				sl.d.deliver(delivery{kind: dRequeue, shard: pending, slot: sl.id, err: err, spawnFail: true})
			}
			if sl.spawnFails > sl.d.retryLimit {
				sl.d.deliver(delivery{kind: dSlotDead, slot: sl.id, err: err})
				return false
			}
			return true // back to run: wait for work before retrying the spawn
		}
		sl.spawnFails = 0
		died := sl.serve(pending)
		pending = -1
		if !died {
			return false
		}
	}
}

// ensure spawns and handshakes a worker if the slot has none.
func (sl *slot) ensure() error {
	if sl.t != nil {
		return nil
	}
	t, err := sl.cfg.spawn.Spawn(sl.id, sl.gen)
	if err != nil {
		return fmt.Errorf("dist: spawn worker %d (gen %d): %w", sl.id, sl.gen, err)
	}
	RecordWorkerSpawn()
	m, err := t.Recv()
	if err == nil && (m.Type != msgHello || m.Version != ProtoVersion) {
		err = fmt.Errorf("dist: worker %d: bad hello (type %q version %d, want %d)", sl.id, m.Type, m.Version, ProtoVersion)
	}
	var offset, rtt int64
	var sampled bool
	if err == nil {
		sl.worker = workerKey(m.Host, m.PID)
		offset, rtt, sampled, err = pingPong(t)
	}
	if err != nil {
		t.Close()
		return fmt.Errorf("dist: worker %d handshake: %w", sl.id, err)
	}
	if sampled {
		sl.recordClock(offset, rtt)
	}
	sl.t = t
	return nil
}

// pingPong is one synchronous heartbeat round trip, used only during
// the handshake (steady-state heartbeats are pipelined in serve). The
// pong's wall clock yields the slot's first clock-offset sample;
// sampled is false against a worker whose pong carried no clock.
func pingPong(t Transport) (offsetNs, rttNs int64, sampled bool, err error) {
	t0 := time.Now().UnixNano()
	if err := t.Send(msg{Type: msgPing}); err != nil {
		return 0, 0, false, err
	}
	m, err := t.Recv()
	t1 := time.Now().UnixNano()
	if err != nil {
		return 0, 0, false, err
	}
	if m.Type != msgPong {
		return 0, 0, false, fmt.Errorf("dist: %q in reply to ping", m.Type)
	}
	RecordHeartbeat()
	if m.Now == 0 {
		return 0, 0, false, nil
	}
	offsetNs, rttNs = clockOffset(t0, t1, m.Now)
	return offsetNs, rttNs, true, nil
}

// serve drives one worker life: keep the in-flight window full, match
// results to dispatched shards, ping on the heartbeat ticker and
// declare death on timeout. pending >= 0 is a shard to dispatch
// immediately. Returns true when the worker died (the caller respawns)
// and false when the sweep is halting.
func (sl *slot) serve(pending int) (died bool) {
	sl.inflight = make(map[int]obs.SpanHandle, sl.d.window)
	sl.frames = make(chan recvFrame, 2*sl.d.window+8)
	sl.readerDead = false
	sl.pingSent = 0
	go func(t Transport, frames chan<- recvFrame) {
		for {
			m, err := t.Recv()
			frames <- recvFrame{m, err}
			if err != nil {
				return
			}
		}
	}(sl.t, sl.frames)
	sl.lastRecv = time.Now()
	if pending >= 0 {
		if err := sl.dispatch(pending); err != nil {
			sl.die(err)
			return true
		}
	}
	ticker := time.NewTicker(sl.d.hbEvery)
	defer ticker.Stop()
	for {
		// Top up the window with whatever work is queued, without
		// blocking: latency hiding comes from writing jobs ahead.
		for len(sl.inflight) < sl.d.window {
			select {
			case sh := <-sl.d.work:
				if err := sl.dispatch(sh); err != nil {
					sl.die(err)
					return true
				}
				continue
			default:
			}
			break
		}
		if len(sl.inflight) == 0 {
			// Idle: block for work. No pings while idle — dispatch
			// resets the liveness epoch when work resumes.
			select {
			case <-sl.d.stop:
				sl.shutdown()
				return false
			case sh := <-sl.d.work:
				if err := sl.dispatch(sh); err != nil {
					sl.die(err)
					return true
				}
			}
			continue
		}
		select {
		case <-sl.d.stop:
			sl.shutdown()
			return false
		case sh := <-sl.d.work:
			if err := sl.dispatch(sh); err != nil {
				sl.die(err)
				return true
			}
		case f := <-sl.frames:
			if f.err != nil {
				sl.readerDead = true
				err := f.err
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					err = fmt.Errorf("dist: worker %d exited with %d shard(s) in flight", sl.id, len(sl.inflight))
				}
				sl.die(err)
				return true
			}
			if dead := sl.onFrame(f.m); dead != nil {
				sl.die(dead)
				return true
			}
		case <-ticker.C:
			if time.Since(sl.lastRecv) > sl.d.hbTimeout {
				recordHeartbeatTimeout()
				if sl.d.net != nil {
					sl.d.net.HeartbeatTimeouts.Add(1)
				}
				sl.die(fmt.Errorf("dist: worker %d: heartbeat timeout (silent for %v with %d shard(s) in flight)",
					sl.id, sl.d.hbTimeout, len(sl.inflight)))
				return true
			}
			// Remember the send instant of at most one outstanding ping
			// so its pong yields a clock-offset sample; if an earlier
			// ping is still unanswered, keep its timestamp (pairing the
			// pong with the later send would understate the RTT).
			if sl.pingSent == 0 {
				sl.pingSent = time.Now().UnixNano()
			}
			if err := sl.t.Send(msg{Type: msgPing}); err != nil {
				sl.die(err)
				return true
			}
		}
	}
}

// onFrame handles one well-formed frame; a non-nil return is a
// protocol violation that kills the worker.
func (sl *slot) onFrame(m msg) error {
	switch m.Type {
	case msgPong:
		RecordHeartbeat()
		sl.lastRecv = time.Now()
		if m.Now != 0 && sl.pingSent != 0 {
			off, rtt := clockOffset(sl.pingSent, time.Now().UnixNano(), m.Now)
			sl.recordClock(off, rtt)
			sl.pingSent = 0
		}
		return nil
	case msgResult:
		if m.Result == nil {
			return fmt.Errorf("dist: worker %d: result frame without a result", sl.id)
		}
		sl.lastRecv = time.Now()
		sl.finish(*m.Result)
		return nil
	default:
		return fmt.Errorf("dist: worker %d: unexpected %q frame", sl.id, m.Type)
	}
}

// finish matches one result to its in-flight shard and delivers it. A
// result for a shard this life never dispatched (possible only after a
// desync) is dropped — the coordinator's duplicate guard would discard
// it anyway.
func (sl *slot) finish(res ShardResult) {
	sp, ok := sl.inflight[res.Shard]
	if !ok {
		return
	}
	delete(sl.inflight, res.Shard)
	var shardErr error
	if res.Err != "" {
		shardErr = errors.New(res.Err)
	}
	sp.EndErr(shardErr)
	sl.d.deliver(delivery{kind: dResult, shard: res.Shard, slot: sl.id, stats: res.Stats, err: shardErr})
}

// dispatch sends one shard to the live worker. The shard joins
// inflight before the send so a failed write still requeues it via
// die. Peer slots rewrite TracePath to the shipped digest ref.
func (sl *slot) dispatch(shard int) error {
	sp := sl.d.root.Child("dist.shard", obs.StageEncode).WithShard(shard)
	j := buildJob(sl.d.plan, sl.d.opts, shard, sl.d.states[shard])
	if sl.cfg.ref != "" {
		j.TracePath = sl.cfg.ref
	}
	if h := sl.d.harvest; h != nil {
		j.Trace = h.TraceID()
		j.Span = sp.Context().Parent // 0 when tracing is off; workers then root their spans
	}
	sl.inflight[shard] = sp
	sl.lastRecv = time.Now()
	return sl.t.Send(msg{Type: msgJob, Job: j})
}

// die declares the current worker dead: every in-flight shard goes
// back on the queue for any slot to re-price, the transport is reaped,
// and the generation advances for the respawn.
func (sl *slot) die(err error) {
	RecordWorkerDeath()
	for shard, sp := range sl.inflight {
		sp.EndErr(err)
		delete(sl.inflight, shard)
		sl.d.deliver(delivery{kind: dRequeue, shard: shard, slot: sl.id, err: err})
	}
	sl.reap()
	sl.gen++
}

// shutdown is the polite halt path: forward any results the worker
// already framed (a shard priced concurrently with the stop is still
// priced), harvest the worker's spans when the sweep is collecting
// them, send shutdown, reap.
func (sl *slot) shutdown() {
drain:
	for {
		select {
		case f := <-sl.frames:
			if f.err != nil {
				sl.readerDead = true
				break drain
			}
			if f.m.Type == msgResult && f.m.Result != nil {
				sl.finish(*f.m.Result)
			}
		default:
			break drain
		}
	}
	for shard, sp := range sl.inflight {
		sp.End()
		delete(sl.inflight, shard)
	}
	if h := sl.d.harvest; h != nil && !sl.readerDead {
		// The spans must cross the still-open connection before the
		// shutdown frame: pipe workers lose their recorder with the
		// process, and a TCP peer's connection-bracket span only closes
		// with the connection — the post-dispatch HTTP harvest could
		// race past it. Peers whose connection died are still picked up
		// by that HTTP pass (the dumps dedup by span ID).
		sl.harvestSpans(h)
	}
	sl.t.Send(msg{Type: msgShutdown})
	sl.reap()
}

// harvestSpans asks the live worker for its tagged spans and waits for
// the dump, forwarding any results still racing in. Bounded by the
// heartbeat timeout: a worker that dies mid-harvest costs its spans,
// never the sweep.
func (sl *slot) harvestSpans(h *SpanHarvest) {
	if sl.t.Send(msg{Type: msgSpans, Trace: h.TraceID()}) != nil {
		return
	}
	deadline := time.NewTimer(sl.d.hbTimeout)
	defer deadline.Stop()
	for {
		select {
		case f := <-sl.frames:
			if f.err != nil {
				sl.readerDead = true
				return
			}
			switch f.m.Type {
			case msgSpans:
				if f.m.Spans != nil {
					h.addDump(f.m.Spans)
					recordSpanHarvest(len(f.m.Spans.Spans))
				}
				return
			case msgResult:
				if f.m.Result != nil {
					sl.finish(*f.m.Result)
				}
			}
		case <-deadline.C:
			return
		}
	}
}

// reap closes the transport and drains the reader goroutine to its
// terminal error frame so it can never leak blocked on a full channel.
// When the terminal frame was already consumed (the death was observed
// through it) the reader has exited and there is nothing to drain.
func (sl *slot) reap() {
	sl.t.Close()
	for !sl.readerDead {
		f := <-sl.frames
		if f.err != nil {
			sl.readerDead = true
		}
	}
	sl.t = nil
	sl.frames = nil
}

// dispatch runs the slot pool over every shard the journal does not
// already hold and returns the per-shard stats slots (journal-recovered
// slots included).
func dispatch(root obs.SpanHandle, plan *planned, opts Opts, cfgs []slotConfig, shards int, states []map[string][]byte, prior *journalState, jr *journal) ([]map[string]bus.Stats, error) {
	dsp := root.Child("dist.dispatch", obs.StageEval)
	stats := make([]map[string]bus.Stats, shards)
	shardErrs := make([]error, shards)
	var pendingShards []int
	for k := 0; k < shards; k++ {
		if st, ok := prior.done[k]; ok {
			stats[k] = st
			continue
		}
		pendingShards = append(pendingShards, k)
	}
	retryLimit := opts.RetryLimit
	if retryLimit <= 0 {
		retryLimit = 1
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	hbEvery := opts.HeartbeatInterval
	if hbEvery <= 0 {
		hbEvery = DefaultHeartbeatInterval
	}
	hbTimeout := opts.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = DefaultHeartbeatTimeout
	}

	d := &dispatcher{
		root: root, plan: plan, opts: opts, states: states,
		window: window, hbEvery: hbEvery, hbTimeout: hbTimeout,
		retryLimit: retryLimit, net: opts.Net, harvest: opts.Harvest,
		work:       make(chan int, shards),
		deliveries: make(chan delivery, 2*shards+len(cfgs)*(window+retryLimit+3)+16),
		stop:       make(chan struct{}),
	}
	for _, k := range pendingShards {
		d.work <- k
	}
	live := len(cfgs)
	for id, cfg := range cfgs {
		d.wg.Add(1)
		sl := &slot{d: d, id: id, cfg: cfg}
		go sl.run()
	}
	slotsDone := make(chan struct{})
	go func() { d.wg.Wait(); close(slotsDone) }()

	// attempts counts dispatch tries per shard (worker deaths only;
	// spawn failures never held the shard). doneShard guards against a
	// shard priced twice — possible when a timed-out worker was merely
	// slow and both its late result and the re-dispatch land.
	attempts := make(map[int]int, len(pendingShards))
	doneShard := make([]bool, shards)
	for k := range prior.done {
		doneShard[k] = true
	}
	completed := 0
	stopped := false
	var fatal error
	var lastDead error
	handle := func(dl delivery) {
		switch dl.kind {
		case dResult:
			if doneShard[dl.shard] {
				return
			}
			doneShard[dl.shard] = true
			shardErrs[dl.shard] = dl.err
			stats[dl.shard] = dl.stats
			completed++
			RecordShardDone()
			if jr != nil && dl.err == nil {
				if err := jr.append(journalRec{Type: recDone, Shard: dl.shard, Stats: dl.stats, Digest: statsDigest(dl.stats)}); err != nil {
					if fatal == nil {
						fatal = err
					}
					d.halt()
					return
				}
			}
			if opts.StopAfter > 0 && completed >= opts.StopAfter && completed < len(pendingShards) {
				stopped = true
				d.halt()
			}
		case dRequeue:
			if doneShard[dl.shard] || errors.Is(dl.err, ErrStopped) {
				return
			}
			if !dl.spawnFail {
				attempts[dl.shard]++
				if attempts[dl.shard] > retryLimit {
					if fatal == nil {
						fatal = fmt.Errorf("dist: shard %d: worker %d died %d times (last: %v)", dl.shard, dl.slot, attempts[dl.shard], dl.err)
					}
					d.halt()
					return
				}
				RecordShardRetry()
				recordRedispatch()
				if d.net != nil {
					d.net.Redispatches.Add(1)
				}
			}
			d.work <- dl.shard
		case dSlotDead:
			live--
			lastDead = dl.err
			if live == 0 && completed < len(pendingShards) && fatal == nil {
				fatal = fmt.Errorf("dist: every worker slot died before the sweep finished (last: %v)", lastDead)
				d.halt()
			}
		}
	}
collect:
	for completed < len(pendingShards) && fatal == nil && !stopped {
		select {
		case dl := <-d.deliveries:
			handle(dl)
		case <-slotsDone:
			break collect
		}
	}
	d.halt()
	d.wg.Wait()
	// Slots have exited; pick up anything still buffered. On a
	// deliberate stop only results matter (a slot racing to die must
	// not fail a stopped sweep); otherwise handle everything so fatal
	// states surface.
	for {
		select {
		case dl := <-d.deliveries:
			if !stopped || dl.kind == dResult {
				handle(dl)
			}
		default:
			if fatal != nil {
				dsp.EndErr(fatal)
				return nil, fatal
			}
			if stopped || (opts.StopAfter > 0 && completed < len(pendingShards)) {
				dsp.EndErr(ErrStopped)
				return nil, fmt.Errorf("%w (%d/%d shards journaled)", ErrStopped, completed+len(prior.done), shards)
			}
			// Shard-level pricing errors: lowest shard wins, matching
			// bus.MergeSlots.
			for k := 0; k < shards; k++ {
				if shardErrs[k] != nil {
					dsp.EndErr(shardErrs[k])
					return nil, shardErrs[k]
				}
			}
			for k := 0; k < shards; k++ {
				if stats[k] == nil {
					err := fmt.Errorf("dist: shard %d never completed", k)
					dsp.EndErr(err)
					return nil, err
				}
			}
			dsp.End()
			return stats, nil
		}
	}
}
