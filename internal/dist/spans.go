package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"busenc/internal/obs"
)

// Distributed span harvest. A sweep with Opts.Harvest set mints one
// trace ID, threads it through every job frame, and collects the
// tagged spans back from every process that priced a shard: pipe
// workers answer a spans frame right before shutdown, TCP busencd
// peers answer GET /spans?trace=<id> after dispatch (their spans
// outlive the /dist connection). Each remote recorder timestamps spans
// against its own tracer epoch, so the harvest also keeps a per-worker
// clock-offset estimate — the RTT midpoint of the ping/pong round
// trips the dispatcher already performs — and Merged shifts every
// remote epoch onto the coordinator's clock before building the single
// multi-process timeline.

// SpanDump is one process's contribution to a distributed trace: the
// spans it recorded under the trace ID, plus the identity (pid, host)
// and timebase (tracer epoch, unix ns on the worker's clock) needed to
// place them on a merged timeline.
type SpanDump struct {
	Trace string     `json:"trace"`
	PID   int        `json:"pid"`
	Host  string     `json:"host"`
	Epoch int64      `json:"epoch_unix_ns"`
	Spans []obs.Span `json:"spans,omitempty"`
}

// workerKey names one worker process across transports: busencd peers
// and pipe workers alike are "host/pid", matching the hello frame and
// the /spans export, so clock samples recorded on the frame path pair
// with span dumps harvested over HTTP.
func workerKey(host string, pid int) string {
	return host + "/" + strconv.Itoa(pid)
}

// ClockEstimate is the best clock-offset estimate for one worker.
// OffsetNs is what to add to a wall-clock instant on the worker's
// clock to express it on the coordinator's clock; RTTNs is the round
// trip the retained sample rode on (narrower round trips bound the
// offset error more tightly, so the minimum-RTT sample wins).
type ClockEstimate struct {
	OffsetNs int64 `json:"offset_ns"`
	RTTNs    int64 `json:"rtt_ns"`
	Samples  int64 `json:"samples"`
}

// clockOffset turns one ping/pong round trip into an offset sample.
// t0 and t1 are the coordinator's clock at ping send and pong receive
// (unix ns); remoteNow is the worker's clock when it framed the pong.
// The worker is assumed to have answered at the midpoint of the round
// trip, so
//
//	offset = (t0+t1)/2 − remoteNow
//
// with the error bounded by half the RTT (plus clock drift between
// samples, negligible at sweep timescales).
func clockOffset(t0, t1, remoteNow int64) (offsetNs, rttNs int64) {
	rtt := t1 - t0
	if rtt < 0 {
		rtt = 0 // a clock step mid-flight; keep the sample sane
	}
	return t0 + rtt/2 - remoteNow, rtt
}

// SpanHarvest accumulates one sweep's distributed trace: the minted
// trace ID, the per-worker clock estimates, and the span dumps
// collected at sweep end. Methods are safe for concurrent use by the
// dispatcher's slot goroutines.
type SpanHarvest struct {
	mu     sync.Mutex
	trace  string
	clocks map[string]ClockEstimate
	dumps  map[string]*SpanDump
}

// start installs the sweep's trace ID (the coordinator calls this once
// before dispatch).
func (h *SpanHarvest) start(trace string) {
	h.mu.Lock()
	h.trace = trace
	h.mu.Unlock()
}

// TraceID returns the sweep-wide trace ID, empty before the sweep ran.
func (h *SpanHarvest) TraceID() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trace
}

// recordClock folds one offset sample in, keeping the estimate from
// the narrowest round trip seen so far.
func (h *SpanHarvest) recordClock(key string, offsetNs, rttNs int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.clocks == nil {
		h.clocks = make(map[string]ClockEstimate)
	}
	e, ok := h.clocks[key]
	if !ok || rttNs < e.RTTNs {
		e.OffsetNs = offsetNs
		e.RTTNs = rttNs
	}
	e.Samples++
	h.clocks[key] = e
}

// Clocks returns a copy of the per-worker clock estimates.
func (h *SpanHarvest) Clocks() map[string]ClockEstimate {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]ClockEstimate, len(h.clocks))
	for k, v := range h.clocks {
		out[k] = v
	}
	return out
}

// addDump folds one process's span dump in. Dumps for the same worker
// merge (a worker that served several slot generations reports once
// per connection) with spans deduplicated by ID.
func (h *SpanHarvest) addDump(d *SpanDump) {
	if d == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dumps == nil {
		h.dumps = make(map[string]*SpanDump)
	}
	key := workerKey(d.Host, d.PID)
	have, ok := h.dumps[key]
	if !ok {
		cp := *d
		cp.Spans = append([]obs.Span(nil), d.Spans...)
		h.dumps[key] = &cp
		return
	}
	seen := make(map[uint64]bool, len(have.Spans))
	for _, s := range have.Spans {
		seen[s.ID] = true
	}
	for _, s := range d.Spans {
		if !seen[s.ID] {
			have.Spans = append(have.Spans, s)
		}
	}
}

// Merged assembles the multi-process timeline: the coordinator's own
// spans first, then every harvested worker in stable key order, each
// remote epoch shifted onto the coordinator's clock by its clock
// estimate. A dump whose host/pid matches this process (an in-process
// worker sharing the coordinator's recorder) is skipped — its spans
// are already in the local snapshot. The result is deterministic for a
// given harvest state, so merging twice writes byte-identical files.
func (h *SpanHarvest) Merged(local []obs.Span, localEpoch time.Time) []obs.ProcessTrace {
	h.mu.Lock()
	defer h.mu.Unlock()
	host, _ := os.Hostname()
	self := workerKey(host, os.Getpid())
	procs := []obs.ProcessTrace{{
		Label:       "coordinator " + self,
		Host:        host,
		PID:         os.Getpid(),
		EpochUnixNs: localEpoch.UnixNano(),
		Spans:       local,
	}}
	keys := make([]string, 0, len(h.dumps))
	for k := range h.dumps {
		if k != self {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := h.dumps[k]
		spans := append([]obs.Span(nil), d.Spans...)
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].ID < spans[j].ID
		})
		procs = append(procs, obs.ProcessTrace{
			Label:       "worker " + k,
			Host:        d.Host,
			PID:         d.PID,
			EpochUnixNs: d.Epoch + h.clocks[k].OffsetNs,
			Spans:       spans,
		})
	}
	return procs
}

// harvestPeerSpans pulls the sweep's tagged spans off every TCP peer
// over plain HTTP after dispatch has closed the /dist connections —
// the peer's flight recorder outlives them. Best-effort per peer: a
// peer that died after returning its results costs its spans, not the
// sweep.
func harvestPeerSpans(peers []string, h *SpanHarvest) error {
	trace := h.TraceID()
	var firstErr error
	for _, addr := range peers {
		d, err := fetchPeerSpans(addr, trace)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		h.addDump(d)
		recordSpanHarvest(len(d.Spans))
	}
	return firstErr
}

// fetchPeerSpans is one GET /spans?trace=<id> round trip.
func fetchPeerSpans(addr, trace string) (*SpanDump, error) {
	resp, err := healthClient.Get("http://" + addr + "/spans?trace=" + trace)
	if err != nil {
		return nil, fmt.Errorf("dist: peer %s: span harvest: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("dist: peer %s: /spans returned %s", addr, resp.Status)
	}
	var body struct {
		PID   int        `json:"pid"`
		Host  string     `json:"host"`
		Epoch int64      `json:"epoch_unix_ns"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("dist: peer %s: bad /spans body: %w", addr, err)
	}
	return &SpanDump{Trace: trace, PID: body.PID, Host: body.Host, Epoch: body.Epoch, Spans: body.Spans}, nil
}

// spanDump snapshots this process's contribution to a trace: every
// recorded span tagged with the trace ID, stamped with the tracer
// epoch and process identity. Used by the worker side of the spans
// frame and by the /spans HTTP export.
func spanDump(trace string) *SpanDump {
	host, _ := os.Hostname()
	d := &SpanDump{Trace: trace, PID: os.Getpid(), Host: host}
	tr := obs.CurrentTracer()
	if tr == nil {
		return d
	}
	d.Epoch = tr.Epoch().UnixNano()
	for _, s := range tr.Spans() {
		if s.Trace == trace {
			d.Spans = append(d.Spans, s)
		}
	}
	return d
}
