package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
)

// procTransport is a worker subprocess: frames over its stdin/stdout,
// stderr passed through to ours.
type procTransport struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	conn *conn
}

// ExecSpawner spawns worker processes from an argv (argv[0] is the
// binary, typically os.Executable() with a -worker flag) with extra
// environment entries appended. This is the production spawner behind
// cmd/busencsweep and cmd/paper -benchdist; the gen parameter is
// ignored — every life of a slot runs the same command line.
func ExecSpawner(argv []string, extraEnv []string) Spawner {
	return SpawnerFunc(func(id, gen int) (Transport, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("dist: empty worker command")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &procTransport{cmd: cmd, in: in, conn: newConn(out, in)}, nil
	})
}

func (p *procTransport) Send(m msg) error   { return p.conn.send(m) }
func (p *procTransport) Recv() (msg, error) { return p.conn.recv() }

// Close reaps the worker: closing stdin makes a healthy worker exit on
// EOF; Wait collects it either way. A nonzero exit here is not an
// error — crash handling happened at the protocol layer.
func (p *procTransport) Close() error {
	p.in.Close()
	p.cmd.Wait()
	return nil
}

// pipeTransport runs ServeWorker on a goroutine over in-memory pipes —
// the in-process worker used by tests and by single-process fallbacks.
// A ServeWorker return (including an injected failure) closes the
// worker's write end, so the coordinator observes exactly what a
// process exit looks like: EOF.
type pipeTransport struct {
	conn    *conn
	toWork  *io.PipeWriter
	fromWrk *io.PipeReader
}

// InProcSpawner returns a Spawner whose workers are goroutines in this
// process. optsFor picks the WorkerOpts per (id, gen) — fault-injecting
// tests return FailAfter > 0 for the lives they want to kill; nil
// means default options for every worker.
func InProcSpawner(optsFor func(id, gen int) WorkerOpts) Spawner {
	return SpawnerFunc(func(id, gen int) (Transport, error) {
		var wo WorkerOpts
		if optsFor != nil {
			wo = optsFor(id, gen)
		}
		jobR, jobW := io.Pipe() // coordinator -> worker
		resR, resW := io.Pipe() // worker -> coordinator
		go func() {
			err := ServeWorker(jobR, resW, wo)
			// Closing the result pipe is the goroutine's "process
			// exit": a clean return reads as EOF after the last
			// frame, an injected failure as EOF mid-conversation.
			resW.CloseWithError(err)
			jobR.CloseWithError(err)
		}()
		return &pipeTransport{conn: newConn(resR, jobW), toWork: jobW, fromWrk: resR}, nil
	})
}

func (p *pipeTransport) Send(m msg) error   { return p.conn.send(m) }
func (p *pipeTransport) Recv() (msg, error) { return p.conn.recv() }

func (p *pipeTransport) Close() error {
	p.toWork.Close()
	p.fromWrk.Close()
	return nil
}
