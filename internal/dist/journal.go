package dist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"busenc/internal/bus"
)

// Checkpoint journal: JSON lines, append-only, fsync'd per record. The
// first line is the plan header; every later line is either one
// shard's boundary states (written as the seed sweep produces them) or
// one shard's completed result with a digest of its statistics. A
// coordinator killed at any byte boundary leaves at worst one torn
// trailing line, which resume discards — every fully written record is
// durable, so resume re-prices only shards whose result record never
// made it to disk, and the merged totals are bit-identical to an
// uninterrupted sweep.

// Journal record types.
const (
	recPlan     = "plan"
	recBoundary = "boundary"
	recDone     = "done"
)

// journalRec is one line of the checkpoint file.
type journalRec struct {
	Type string `json:"type"`
	// recPlan
	PlanDigest string   `json:"plan_digest,omitempty"`
	Trace      string   `json:"trace,omitempty"`
	Total      int64    `json:"total,omitempty"`
	Shards     int      `json:"shards,omitempty"`
	Codecs     []string `json:"codecs,omitempty"`
	// recBoundary: marshaled boundary state per codec for one shard.
	Shard  int               `json:"shard,omitempty"`
	States map[string][]byte `json:"states,omitempty"`
	// recDone: one shard's accumulators plus their digest.
	Stats  map[string]bus.Stats `json:"stats,omitempty"`
	Digest string               `json:"digest,omitempty"`
}

// journal is an open checkpoint file in append mode.
type journal struct {
	f *os.File
}

// statsDigest is the content address of one shard's statistics:
// SHA-256 over the canonical JSON encoding. Resume verifies it before
// trusting a record, so a corrupted journal fails loudly instead of
// merging garbage.
func statsDigest(stats map[string]bus.Stats) string {
	b, err := json.Marshal(stats)
	if err != nil {
		// map[string]bus.Stats always marshals; this is unreachable.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// openJournal opens (creating if needed) the checkpoint for appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append writes one record and fsyncs. The write is a single Write
// call ending in '\n', so a crash tears at most the final line.
func (j *journal) append(rec journalRec) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) Close() error { return j.f.Close() }

// journalState is what resume recovers from an existing checkpoint.
type journalState struct {
	header   journalRec
	boundary map[int]map[string][]byte // shard -> codec -> state
	done     map[int]map[string]bus.Stats
}

// loadJournal reads an existing checkpoint. A missing file yields an
// empty state (fresh sweep). A torn trailing line — no newline, or
// unparseable JSON — is tolerated and dropped; a torn or digest-
// mismatched line anywhere else is an error, because records before a
// valid record cannot have been torn by a crash.
func loadJournal(path string) (*journalState, error) {
	st := &journalState{
		boundary: map[int]map[string][]byte{},
		done:     map[int]map[string]bus.Stats{},
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), maxFrame)
	lineno := 0
	var pending []byte // a line is only committed once the next line proves it wasn't the torn tail
	pendingLine := 0
	commit := func(line []byte, lineno int, last bool) error {
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			if last {
				return nil // torn tail, drop
			}
			return fmt.Errorf("dist: checkpoint %s line %d: %w", path, lineno, err)
		}
		switch rec.Type {
		case recPlan:
			if lineno != 1 {
				return fmt.Errorf("dist: checkpoint %s line %d: duplicate plan header", path, lineno)
			}
			st.header = rec
		case recBoundary:
			st.boundary[rec.Shard] = rec.States
		case recDone:
			if got := statsDigest(rec.Stats); got != rec.Digest {
				return fmt.Errorf("dist: checkpoint %s line %d: shard %d digest mismatch", path, lineno, rec.Shard)
			}
			st.done[rec.Shard] = rec.Stats
		default:
			return fmt.Errorf("dist: checkpoint %s line %d: unknown record %q", path, lineno, rec.Type)
		}
		return nil
	}
	for sc.Scan() {
		if pending != nil {
			if err := commit(pending, pendingLine, false); err != nil {
				return nil, err
			}
		}
		lineno++
		pending = append(pending[:0], bytes.TrimRight(sc.Bytes(), "\r")...)
		pendingLine = lineno
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: checkpoint %s: %w", path, err)
	}
	if pending != nil {
		if err := commit(pending, pendingLine, true); err != nil {
			return nil, err
		}
	}
	if st.header.Type == "" && (len(st.boundary) > 0 || len(st.done) > 0) {
		return nil, fmt.Errorf("dist: checkpoint %s: records without a plan header", path)
	}
	return st, nil
}
