package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

// mixStream mirrors codec's property-test generator: a blend of
// sequential instruction runs, jumps and random data accesses, so
// every registered code (working-zone and adaptive included) exercises
// real state.
func mixStream(width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<width - 1
	s := trace.New("mix", width)
	addr := rng.Uint64() & mask
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = (addr + 4) & mask
			s.Append(addr, trace.Instr)
		case 1:
			addr = rng.Uint64() & mask
			s.Append(addr, trace.Instr)
		case 2:
			s.Append(rng.Uint64()&mask, trace.DataRead)
		default:
			s.Append(rng.Uint64()&mask, trace.DataWrite)
		}
	}
	return s
}

// writeBETR materializes s as a BETR file in a temp dir.
func writeBETR(t *testing.T, s *trace.Stream) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.betr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// wantResults prices s sequentially with RunFast for every spec — the
// reference every sweep must match bit-for-bit.
func wantResults(t *testing.T, s *trace.Stream, specs []CodecSpec, verify codec.VerifyMode, perLine bool) []codec.Result {
	t.Helper()
	out := make([]codec.Result, len(specs))
	for i, cs := range specs {
		c, err := cs.New()
		if err != nil {
			t.Fatal(err)
		}
		r, err := codec.RunFast(c, s, codec.RunOpts{Verify: verify, PerLine: perLine})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func sameResult(got, want codec.Result) bool {
	if got.Codec != want.Codec || got.Transitions != want.Transitions ||
		got.Cycles != want.Cycles || got.MaxPerCycle != want.MaxPerCycle ||
		len(got.PerLine) != len(want.PerLine) {
		return false
	}
	for i := range got.PerLine {
		if got.PerLine[i] != want.PerLine[i] {
			return false
		}
	}
	return true
}

func checkParity(t *testing.T, got, want []codec.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameResult(got[i], want[i]) {
			t.Errorf("codec %s: dist %+v != sequential %+v", want[i].Codec, got[i], want[i])
		}
	}
}

// countingSpawner wraps a Spawner and records every (id, gen) spawn.
type countingSpawner struct {
	inner  Spawner
	mu     sync.Mutex
	spawns []string
}

func (c *countingSpawner) Spawn(id, gen int) (Transport, error) {
	c.mu.Lock()
	c.spawns = append(c.spawns, fmt.Sprintf("%d:%d", id, gen))
	c.mu.Unlock()
	return c.inner.Spawn(id, gen)
}

// TestSweepParityAllCodecs: a multi-worker multi-shard sweep over
// in-process workers matches RunFast exactly for every registered
// codec, with and without per-line counting.
func TestSweepParityAllCodecs(t *testing.T) {
	const width = 32
	s := mixStream(width, 20000, 41)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	for _, perLine := range []bool{false, true} {
		res, err := Sweep(path, Opts{
			Workers: 3,
			Shards:  7,
			Codecs:  specs,
			Verify:  codec.VerifyNone,
			PerLine: perLine,
			Spawn:   InProcSpawner(nil),
		})
		if err != nil {
			t.Fatalf("perLine=%v: %v", perLine, err)
		}
		checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, perLine))
	}
}

// TestSweepVerifyModes: verification settings ride along to the
// workers without disturbing parity.
func TestSweepVerifyModes(t *testing.T) {
	const width = 24
	s := mixStream(width, 8000, 42)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	for _, v := range []codec.VerifyMode{codec.VerifyFull, codec.VerifySampled} {
		res, err := Sweep(path, Opts{
			Workers: 2, Shards: 5, Codecs: specs, Verify: v,
			Spawn: InProcSpawner(nil),
		})
		if err != nil {
			t.Fatalf("verify=%d: %v", v, err)
		}
		checkParity(t, res, wantResults(t, s, specs, v, false))
	}
}

// TestSweepTextTrace: a text trace is converted once and priced
// identically.
func TestSweepTextTrace(t *testing.T) {
	const width = 16
	s := mixStream(width, 6000, 43)
	path := filepath.Join(t.TempDir(), "trace.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	specs := AllSpecs(width)
	res, err := Sweep(path, Opts{
		Workers: 2, Shards: 4, Codecs: specs, Spawn: InProcSpawner(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyFull, false))
}

// TestSweepMorePartsThanWorkers: shards default to 4x workers and
// empty shards (over-split tiny stream) are priced correctly.
func TestSweepTinyStreamOverSplit(t *testing.T) {
	const width = 16
	s := mixStream(width, 37, 44)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	res, err := Sweep(path, Opts{
		Workers: 2, Shards: 16, Codecs: specs, Spawn: InProcSpawner(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyFull, false))
}

// TestWorkerDeathRetry: a worker that dies mid-sweep costs nothing but
// a respawn — the orphaned shard is retried once and parity holds.
func TestWorkerDeathRetry(t *testing.T) {
	const width = 32
	s := mixStream(width, 12000, 45)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	// Worker 0's first life dies after pricing 1 job; every other life
	// is healthy. One slot makes the death deterministic: the pipelined
	// window guarantees the first life receives a second job frame (9
	// shards, one slot), which is what trips FailAfter.
	sp := &countingSpawner{inner: InProcSpawner(func(id, gen int) WorkerOpts {
		if id == 0 && gen == 0 {
			return WorkerOpts{FailAfter: 1}
		}
		return WorkerOpts{}
	})}
	res, err := Sweep(path, Opts{
		Workers: 1, Shards: 9, Codecs: specs, Verify: codec.VerifyNone, Spawn: sp,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
	sp.mu.Lock()
	defer sp.mu.Unlock()
	found := false
	for _, sp := range sp.spawns {
		if sp == "0:1" {
			found = true
		}
	}
	if !found {
		t.Errorf("worker 0 was never respawned: spawns %v", sp.spawns)
	}
}

// TestWorkerDeathExhaustsRetries: a shard whose worker keeps dying
// fails the sweep after the retry budget, with an error naming the
// worker.
func TestWorkerDeathExhaustsRetries(t *testing.T) {
	const width = 16
	s := mixStream(width, 4000, 46)
	path := writeBETR(t, s)
	// A slot that can never hold a live worker: every spawn is
	// refused, so the first shard burns its retry budget immediately.
	dead := SpawnerFunc(func(id, gen int) (Transport, error) {
		return nil, errors.New("spawn refused")
	})
	_, err := Sweep(path, Opts{
		Workers: 1, Shards: 2, Codecs: AllSpecs(width), Verify: codec.VerifyNone, Spawn: dead,
	})
	if err == nil || !strings.Contains(err.Error(), "died") || !strings.Contains(err.Error(), "spawn refused") {
		t.Fatalf("err = %v, want worker-death failure naming the spawn error", err)
	}
}

// TestCheckpointResume: stop a sweep partway, then resume it from the
// journal — the second run prices only the missing shards and total
// results are bit-identical to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	const width = 32
	s := mixStream(width, 16000, 47)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	opts := Opts{
		Workers: 2, Shards: 8, Codecs: specs, Verify: codec.VerifyNone,
		Checkpoint: ckpt, Spawn: InProcSpawner(nil), StopAfter: 3,
	}
	_, err := Sweep(path, opts)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("first run: err = %v, want ErrStopped", err)
	}
	// Resume: drop the stop knob, count the jobs actually priced.
	opts.StopAfter = 0
	jobs := &jobCounter{}
	opts.Spawn = jobs.wrap(InProcSpawner(nil))
	res, err := Sweep(path, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
	if n := jobs.count(); n >= 8 {
		t.Errorf("resume priced %d shards; journal recovery saved nothing", n)
	}
}

// jobCounter counts jobs flowing through wrapped transports.
type jobCounter struct {
	mu sync.Mutex
	n  int
}

func (jc *jobCounter) count() int {
	jc.mu.Lock()
	defer jc.mu.Unlock()
	return jc.n
}

func (jc *jobCounter) wrap(inner Spawner) Spawner {
	return SpawnerFunc(func(id, gen int) (Transport, error) {
		t, err := inner.Spawn(id, gen)
		if err != nil {
			return nil, err
		}
		return &countingTransport{Transport: t, jc: jc}, nil
	})
}

type countingTransport struct {
	Transport
	jc *jobCounter
}

func (ct *countingTransport) Send(m msg) error {
	if m.Type == msgJob {
		ct.jc.mu.Lock()
		ct.jc.n++
		ct.jc.mu.Unlock()
	}
	return ct.Transport.Send(m)
}

// TestCheckpointTornTail: a torn trailing line (the crash case) is
// dropped; the shard it described is simply re-priced.
func TestCheckpointTornTail(t *testing.T) {
	const width = 16
	s := mixStream(width, 8000, 48)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	opts := Opts{
		Workers: 1, Shards: 4, Codecs: specs, Verify: codec.VerifyNone,
		Checkpoint: ckpt, Spawn: InProcSpawner(nil), StopAfter: 2,
	}
	if _, err := Sweep(path, opts); !errors.Is(err, ErrStopped) {
		t.Fatal("expected stop")
	}
	// Tear the tail: append half a record with no newline.
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"done","shard":3,"stats":{"bro`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	opts.StopAfter = 0
	res, err := Sweep(path, opts)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
}

// TestCheckpointStalePlan: resuming with different sweep parameters is
// refused — the checkpoint carries the plan digest.
func TestCheckpointStalePlan(t *testing.T) {
	const width = 16
	s := mixStream(width, 6000, 49)
	path := writeBETR(t, s)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	opts := Opts{
		Workers: 1, Shards: 4, Codecs: AllSpecs(width), Verify: codec.VerifyNone,
		Checkpoint: ckpt, Spawn: InProcSpawner(nil), StopAfter: 1,
	}
	if _, err := Sweep(path, opts); !errors.Is(err, ErrStopped) {
		t.Fatal("expected stop")
	}
	opts.StopAfter = 0
	opts.Shards = 5 // different plan
	_, err := Sweep(path, opts)
	if err == nil || !strings.Contains(err.Error(), "different plan") {
		t.Fatalf("err = %v, want plan-digest refusal", err)
	}
}

// TestSweepRejectsTrainedCodec: Options.Train cannot cross a process
// boundary and must be refused at spec time, not dropped.
func TestSweepRejectsTrainedCodec(t *testing.T) {
	s := mixStream(16, 100, 50)
	if _, err := SpecFor("beach", 16, codec.Options{Train: s}); err == nil {
		t.Fatal("trained codec accepted")
	}
}

// TestSweepErrorPositioning: a shard-level pricing failure surfaces
// with the lowest shard winning, like the in-process merge. A codec
// spec that cannot be constructed (bad width) fails every shard; the
// reported error must be deterministic.
func TestSweepBadSpec(t *testing.T) {
	s := mixStream(16, 4000, 51)
	path := writeBETR(t, s)
	_, err := Sweep(path, Opts{
		Workers: 2, Shards: 4,
		Codecs: []CodecSpec{{Name: "no-such-codec", Width: 16}},
		Spawn:  InProcSpawner(nil),
	})
	if err == nil || !strings.Contains(err.Error(), "no-such-codec") {
		t.Fatalf("err = %v, want unknown-codec failure", err)
	}
}

// TestPipelinedWindowParity: the in-flight window is a latency knob,
// never a correctness knob — any window size produces bit-identical
// results, including window 1 (the old lock-step dispatch).
func TestPipelinedWindowParity(t *testing.T) {
	const width = 32
	s := mixStream(width, 10000, 54)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	want := wantResults(t, s, specs, codec.VerifyNone, false)
	for _, window := range []int{1, 2, 8} {
		res, err := Sweep(path, Opts{
			Workers: 2, Shards: 8, Codecs: specs, Verify: codec.VerifyNone,
			Window: window, Spawn: InProcSpawner(nil),
		})
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		checkParity(t, res, want)
	}
}

// TestHeartbeatTimeoutRedispatch: a worker that wedges (keeps the
// connection open but answers nothing) is detected by the heartbeat
// timeout; its in-flight shards re-dispatch and parity holds.
func TestHeartbeatTimeoutRedispatch(t *testing.T) {
	const width = 32
	s := mixStream(width, 8000, 55)
	path := writeBETR(t, s)
	specs := AllSpecs(width)
	var ns NetStats
	// Worker 0's first life stalls after one job: it reads every frame
	// (so pipelined sends never block) but stops replying, even to
	// pings — the wedged-peer failure mode EOF detection cannot see.
	sp := InProcSpawner(func(id, gen int) WorkerOpts {
		if id == 0 && gen == 0 {
			return WorkerOpts{StallAfter: 1}
		}
		return WorkerOpts{}
	})
	res, err := Sweep(path, Opts{
		Workers: 2, Shards: 8, Codecs: specs, Verify: codec.VerifyNone,
		Spawn: sp, Net: &ns,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, res, wantResults(t, s, specs, codec.VerifyNone, false))
	if n := ns.HeartbeatTimeouts.Load(); n < 1 {
		t.Errorf("heartbeat timeouts = %d, want >= 1", n)
	}
	if n := ns.Redispatches.Load(); n < 1 {
		t.Errorf("redispatches = %d, want >= 1", n)
	}
}
