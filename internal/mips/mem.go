package mips

import "fmt"

// pageBits selects a 4 KiB page size for the sparse memory.
const pageBits = 12

// Memory is a sparse, byte-addressable, big-endian 32-bit memory.
type Memory struct {
	pages map[uint32]*[1 << pageBits]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[1 << pageBits]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[1 << pageBits]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([1 << pageBits]byte)
		m.pages[key] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory).
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(1<<pageBits-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(1<<pageBits-1)] = v
}

// ReadWord returns the big-endian 32-bit word at addr.
func (m *Memory) ReadWord(addr uint32) uint32 {
	return uint32(m.LoadByte(addr))<<24 | uint32(m.LoadByte(addr+1))<<16 |
		uint32(m.LoadByte(addr+2))<<8 | uint32(m.LoadByte(addr+3))
}

// WriteWord stores a big-endian 32-bit word.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.StoreByte(addr, byte(v>>24))
	m.StoreByte(addr+1, byte(v>>16))
	m.StoreByte(addr+2, byte(v>>8))
	m.StoreByte(addr+3, byte(v))
}

// ReadHalf returns the big-endian 16-bit halfword at addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr))<<8 | uint16(m.LoadByte(addr+1))
}

// WriteHalf stores a big-endian 16-bit halfword.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v>>8))
	m.StoreByte(addr+1, byte(v))
}

// LoadBytes copies data into memory starting at addr.
func (m *Memory) LoadBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// Footprint returns the number of resident pages, for tests.
func (m *Memory) Footprint() int { return len(m.pages) }

// Segment is a contiguous chunk of an assembled program image.
type Segment struct {
	Base  uint32
	Bytes []byte
}

// Program is an assembled program ready to load into a CPU.
type Program struct {
	// Entry is the initial program counter.
	Entry uint32
	// Segments are the memory images (text and data).
	Segments []Segment
	// Symbols maps label names to addresses.
	Symbols map[string]uint32
}

// Symbol returns a label's address or an error naming it.
func (p *Program) Symbol(name string) (uint32, error) {
	if a, ok := p.Symbols[name]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("mips: undefined symbol %q", name)
}
