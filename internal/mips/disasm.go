package mips

import "fmt"

// Disassemble renders one instruction word at the given pc as assembler
// text. Unknown encodings render as ".word 0x...".
func Disassemble(pc, w uint32) string {
	switch opcode(w) {
	case opSPECIAL:
		return disSpecial(w)
	case opREGIMM:
		off := pc + 4 + uint32(simm(w))<<2
		switch uint32(rt(w)) {
		case rtBLTZ:
			return fmt.Sprintf("bltz %s, 0x%x", RegName(rs(w)), off)
		case rtBGEZ:
			return fmt.Sprintf("bgez %s, 0x%x", RegName(rs(w)), off)
		}
	case opJ:
		return fmt.Sprintf("j 0x%x", pc&0xF0000000|target(w)<<2)
	case opJAL:
		return fmt.Sprintf("jal 0x%x", pc&0xF0000000|target(w)<<2)
	case opBEQ:
		if rs(w) == 0 && rt(w) == 0 {
			return fmt.Sprintf("b 0x%x", pc+4+uint32(simm(w))<<2)
		}
		return fmt.Sprintf("beq %s, %s, 0x%x", RegName(rs(w)), RegName(rt(w)), pc+4+uint32(simm(w))<<2)
	case opBNE:
		return fmt.Sprintf("bne %s, %s, 0x%x", RegName(rs(w)), RegName(rt(w)), pc+4+uint32(simm(w))<<2)
	case opBLEZ:
		return fmt.Sprintf("blez %s, 0x%x", RegName(rs(w)), pc+4+uint32(simm(w))<<2)
	case opBGTZ:
		return fmt.Sprintf("bgtz %s, 0x%x", RegName(rs(w)), pc+4+uint32(simm(w))<<2)
	case opADDI:
		return disImm("addi", w)
	case opADDIU:
		return disImm("addiu", w)
	case opSLTI:
		return disImm("slti", w)
	case opSLTIU:
		return disImm("sltiu", w)
	case opANDI:
		return disImmU("andi", w)
	case opORI:
		return disImmU("ori", w)
	case opXORI:
		return disImmU("xori", w)
	case opLUI:
		return fmt.Sprintf("lui %s, 0x%x", RegName(rt(w)), imm(w))
	case opLB:
		return disMem("lb", w)
	case opLBU:
		return disMem("lbu", w)
	case opLH:
		return disMem("lh", w)
	case opLHU:
		return disMem("lhu", w)
	case opLW:
		return disMem("lw", w)
	case opSB:
		return disMem("sb", w)
	case opSH:
		return disMem("sh", w)
	case opSW:
		return disMem("sw", w)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}

func disImm(m string, w uint32) string {
	return fmt.Sprintf("%s %s, %s, %d", m, RegName(rt(w)), RegName(rs(w)), simm(w))
}

func disImmU(m string, w uint32) string {
	return fmt.Sprintf("%s %s, %s, 0x%x", m, RegName(rt(w)), RegName(rs(w)), imm(w))
}

func disMem(m string, w uint32) string {
	return fmt.Sprintf("%s %s, %d(%s)", m, RegName(rt(w)), simm(w), RegName(rs(w)))
}

func disSpecial(w uint32) string {
	if w == 0 {
		return "nop"
	}
	switch funct(w) {
	case fnSLL:
		return fmt.Sprintf("sll %s, %s, %d", RegName(rd(w)), RegName(rt(w)), shamt(w))
	case fnSRL:
		return fmt.Sprintf("srl %s, %s, %d", RegName(rd(w)), RegName(rt(w)), shamt(w))
	case fnSRA:
		return fmt.Sprintf("sra %s, %s, %d", RegName(rd(w)), RegName(rt(w)), shamt(w))
	case fnSLLV:
		return fmt.Sprintf("sllv %s, %s, %s", RegName(rd(w)), RegName(rt(w)), RegName(rs(w)))
	case fnSRLV:
		return fmt.Sprintf("srlv %s, %s, %s", RegName(rd(w)), RegName(rt(w)), RegName(rs(w)))
	case fnSRAV:
		return fmt.Sprintf("srav %s, %s, %s", RegName(rd(w)), RegName(rt(w)), RegName(rs(w)))
	case fnJR:
		return fmt.Sprintf("jr %s", RegName(rs(w)))
	case fnJALR:
		return fmt.Sprintf("jalr %s, %s", RegName(rd(w)), RegName(rs(w)))
	case fnSYSCALL:
		return "syscall"
	case fnBREAK:
		return "break"
	case fnMFHI:
		return fmt.Sprintf("mfhi %s", RegName(rd(w)))
	case fnMTHI:
		return fmt.Sprintf("mthi %s", RegName(rs(w)))
	case fnMFLO:
		return fmt.Sprintf("mflo %s", RegName(rd(w)))
	case fnMTLO:
		return fmt.Sprintf("mtlo %s", RegName(rs(w)))
	case fnMULT:
		return fmt.Sprintf("mult %s, %s", RegName(rs(w)), RegName(rt(w)))
	case fnMULTU:
		return fmt.Sprintf("multu %s, %s", RegName(rs(w)), RegName(rt(w)))
	case fnDIV:
		return fmt.Sprintf("div %s, %s", RegName(rs(w)), RegName(rt(w)))
	case fnDIVU:
		return fmt.Sprintf("divu %s, %s", RegName(rs(w)), RegName(rt(w)))
	case fnADD:
		return disR3("add", w)
	case fnADDU:
		return disR3("addu", w)
	case fnSUB:
		return disR3("sub", w)
	case fnSUBU:
		return disR3("subu", w)
	case fnAND:
		return disR3("and", w)
	case fnOR:
		return disR3("or", w)
	case fnXOR:
		return disR3("xor", w)
	case fnNOR:
		return disR3("nor", w)
	case fnSLT:
		return disR3("slt", w)
	case fnSLTU:
		return disR3("sltu", w)
	}
	return fmt.Sprintf(".word 0x%08x", w)
}

func disR3(m string, w uint32) string {
	return fmt.Sprintf("%s %s, %s, %s", m, RegName(rd(w)), RegName(rs(w)), RegName(rt(w)))
}
