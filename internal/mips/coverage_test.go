package mips

import "testing"

// TestOpcodeCoverage exercises every remaining instruction and pseudo
// through execution, checking architectural results.
func TestOpcodeCoverage(t *testing.T) {
	c := runSrc(t, `
        .text
main:
        li    $t0, 0xF0
        li    $t1, 4
        sllv  $t2, $t0, $t1      # 0xF00
        srlv  $t3, $t2, $t1      # 0xF0
        li    $t4, -16
        srav  $t5, $t4, $t1      # -1
        mthi  $t0
        mfhi  $t6                # 0xF0
        mtlo  $t1
        mflo  $t7                # 4
        andi  $s0, $t0, 0x30     # 0x30
        ori   $s1, $t0, 0x0F     # 0xFF
        xori  $s2, $t0, 0xFF     # 0x0F
        slti  $s3, $t4, 0        # 1
        sltiu $s4, $t4, 0        # 0 (unsigned -16 is huge)
        not   $s5, $zero         # 0xFFFFFFFF
        neg   $s6, $t1           # -4
        rem   $s7, $t2, $t1      # 0xF00 % 4 = 0
        li    $v0, 10
        syscall
`, 200)
	checks := []struct {
		reg  int
		want uint32
	}{
		{RegT2, 0xF00}, {RegT3, 0xF0}, {RegT5, 0xFFFFFFFF},
		{RegT6, 0xF0}, {RegT7, 4},
		{RegS0, 0x30}, {RegS1, 0xFF}, {RegS2, 0x0F},
		{RegS3, 1}, {RegS4, 0},
		{RegS5, 0xFFFFFFFF}, {RegS6, 0xFFFFFFFC}, {RegS7, 0},
	}
	for _, ch := range checks {
		if c.Regs[ch.reg] != ch.want {
			t.Errorf("%s = %#x, want %#x", RegName(ch.reg), c.Regs[ch.reg], ch.want)
		}
	}
}

func TestBranchVariants(t *testing.T) {
	c := runSrc(t, `
        .text
main:
        li    $t0, -3
        li    $t1, 3
        li    $s0, 0
        bltz  $t0, a            # taken
        li    $s0, 1
a:      bgez  $t1, b            # taken
        li    $s0, 2
b:      blez  $zero, c          # taken (== 0)
        li    $s0, 3
c:      bgtz  $t1, d            # taken
        li    $s0, 4
d:      beqz  $zero, e          # taken
        li    $s0, 5
e:      bnez  $t1, f            # taken
        li    $s0, 6
f:      bltu  $t1, $t0, g       # taken: 3 < 0xFFFFFFFD unsigned
        li    $s0, 7
g:      bgeu  $t0, $t1, h       # taken
        li    $s0, 8
h:      ble   $t0, $t1, i       # taken signed
        li    $s0, 9
i:      bgt   $t1, $t0, done    # taken signed
        li    $s0, 10
done:   b     exit
        li    $s0, 11
exit:   li    $v0, 10
        syscall
`, 200)
	if c.Regs[RegS0] != 0 {
		t.Errorf("a branch fell through: marker = %d", c.Regs[RegS0])
	}
}

func TestJalrVariants(t *testing.T) {
	c := runSrc(t, `
        .text
main:
        la    $t0, fn
        jalr  $t0               # $ra form
        move  $s0, $v0
        la    $t1, fn2
        jalr  $t2, $t1          # explicit link register
        move  $s1, $v0
        li    $v0, 10
        syscall
fn:     li    $v0, 7
        jr    $ra
fn2:    li    $v0, 9
        jr    $t2
`, 200)
	if c.Regs[RegS0] != 7 || c.Regs[RegS1] != 9 {
		t.Errorf("jalr results: %d %d", c.Regs[RegS0], c.Regs[RegS1])
	}
}

func TestBreakHalts(t *testing.T) {
	c := runSrc(t, ".text\nmain: li $t0, 5\n break\n li $t0, 9\n", 100)
	if c.Regs[RegT0] != 5 {
		t.Error("break did not halt before the next instruction")
	}
}

func TestLuiAndLiVariants(t *testing.T) {
	c := runSrc(t, `
        .text
main:
        lui  $t0, 0x1234        # 0x12340000
        li   $t1, 0x00010000    # single lui
        li   $t2, 0xFFFF        # single ori
        li   $t3, -1            # addiu sign-extends
        li   $t4, 0x12345678    # lui+ori
        li   $v0, 10
        syscall
`, 100)
	want := map[int]uint32{
		RegT0: 0x12340000, RegT1: 0x00010000, RegT2: 0xFFFF,
		RegT3: 0xFFFFFFFF, RegT4: 0x12345678,
	}
	for reg, w := range want {
		if c.Regs[reg] != w {
			t.Errorf("%s = %#x, want %#x", RegName(reg), c.Regs[reg], w)
		}
	}
}

func TestNumericRegisterNames(t *testing.T) {
	c := runSrc(t, ".text\nmain: li $8, 42\n li $v0, 10\n syscall\n", 100)
	if c.Regs[RegT0] != 42 {
		t.Error("numeric register name $8 not honoured")
	}
}

func TestDirectiveLimits(t *testing.T) {
	if _, err := Assemble(".data\nbig: .space 0x40000000\n"); err == nil {
		t.Error(".space of 1 GiB accepted")
	}
	if _, err := Assemble(".data\n.align 30\n"); err == nil {
		t.Error(".align 30 accepted")
	}
	if _, err := Assemble(".data\nok: .space 64\n.align 3\nw: .word 1\n"); err != nil {
		t.Errorf("reasonable directives rejected: %v", err)
	}
}

func TestDisassembleAllEncodedForms(t *testing.T) {
	// Assemble a program touching every mnemonic family and check the
	// disassembler names each word with the right mnemonic.
	src := `
        .text
main:   add $t0, $t1, $t2
        sub $t0, $t1, $t2
        and $t0, $t1, $t2
        or $t0, $t1, $t2
        xor $t0, $t1, $t2
        nor $t0, $t1, $t2
        slt $t0, $t1, $t2
        sltu $t0, $t1, $t2
        addu $t0, $t1, $t2
        subu $t0, $t1, $t2
        sll $t0, $t1, 3
        srl $t0, $t1, 3
        sra $t0, $t1, 3
        sllv $t0, $t1, $t2
        srlv $t0, $t1, $t2
        srav $t0, $t1, $t2
        mult $t1, $t2
        multu $t1, $t2
        div $t1, $t2
        divu $t1, $t2
        mfhi $t0
        mflo $t0
        mthi $t0
        mtlo $t0
        jr $ra
        jalr $t0
        syscall
        break
        addi $t0, $t1, -5
        addiu $t0, $t1, 5
        slti $t0, $t1, 5
        sltiu $t0, $t1, 5
        andi $t0, $t1, 5
        ori $t0, $t1, 5
        xori $t0, $t1, 5
        lui $t0, 5
        lb $t0, 1($t1)
        lbu $t0, 1($t1)
        lh $t0, 2($t1)
        lhu $t0, 2($t1)
        lw $t0, 4($t1)
        sb $t0, 1($t1)
        sh $t0, 2($t1)
        sw $t0, 4($t1)
        beq $t0, $t1, main
        bne $t0, $t1, main
        blez $t0, main
        bgtz $t0, main
        bltz $t0, main
        bgez $t0, main
        j main
        jal main
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	wantMnems := []string{
		"add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "addu", "subu",
		"sll", "srl", "sra", "sllv", "srlv", "srav",
		"mult", "multu", "div", "divu", "mfhi", "mflo", "mthi", "mtlo",
		"jr", "jalr", "syscall", "break",
		"addi", "addiu", "slti", "sltiu", "andi", "ori", "xori", "lui",
		"lb", "lbu", "lh", "lhu", "lw", "sb", "sh", "sw",
		"beq", "bne", "blez", "bgtz", "bltz", "bgez", "j", "jal",
	}
	bytes := p.Segments[0].Bytes
	for i, want := range wantMnems {
		w := uint32(bytes[i*4])<<24 | uint32(bytes[i*4+1])<<16 | uint32(bytes[i*4+2])<<8 | uint32(bytes[i*4+3])
		got := Disassemble(DefaultTextBase+uint32(i*4), w)
		mnem := got
		if idx := indexByte(got, ' '); idx > 0 {
			mnem = got[:idx]
		}
		if mnem != want {
			t.Errorf("word %d: disassembled as %q, want mnemonic %q", i, got, want)
		}
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
