package mips

import (
	"strings"
	"testing"
)

// TestEncodeErrorPaths drives every operand-validation branch of the
// encoder with malformed statements.
func TestEncodeErrorPaths(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the expected error
	}{
		{"add $t0, $t1", "needs 3 operands"},
		{"add $zz, $t1, $t2", "bad register"},
		{"sll $t0, $t1, 99", "bad shift"},
		{"sll $t0, $t1, $t2", "bad shift"}, // register instead of amount
		{"mult $t0", "needs 2 operands"},
		{"mfhi", "needs 1 operand"},
		{"jr $t0, $t1", "needs 1 operand"},
		{"jalr $t0, $t1, $t2", "needs 1 or 2"},
		{"lui $t0, 0x10000", "bad lui immediate"},
		{"lui $t0", "needs 2 operands"},
		{"andi $t0, $t1, 0x10000", "exceeds 16 bits"},
		{"addi $t0, $t1, 40000", "out of signed 16-bit range"},
		{"lw $t0", "needs 2 operands"},
		{"lw $t0, 0($zz)", "bad register"},
		{"lw $t0, 0(t1", "bad memory operand"},
		{"beq $t0, $t1", "needs 3 operands"},
		{"beq $t0, $t1, nowhere", "branch target"},
		{"blez $t0", "needs 2 operands"},
		{"bnez $t0", "needs 2 operands"},
		{"b", "needs 1 operand"},
		{"j nowhere", "jump target"},
		{"j 2", "not aligned"},
		{"move $t0", "needs 2 operands"},
		{"li $t0", "li needs 2 operands"},
		{"li $t0, oops", "li immediate"},
		{"la $t0, nowhere", "la target"},
		{"mul $t0, $t1", "needs 3 operands"},
		{"blt $t0, $t1", "needs 3 operands"},
		{"blt $t0, $t1, nowhere", "branch target"},
		{"frobnicate $t0", "unknown mnemonic"},
		{".word", ""}, // empty .word emits nothing; must assemble
	}
	for _, tc := range cases {
		_, err := Assemble(".text\nmain: " + tc.src + "\n")
		if tc.want == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", tc.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q assembled, want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	// A branch across more than 2^15 instruction words must be rejected.
	var sb strings.Builder
	sb.WriteString(".text\nmain: beq $t0, $t1, far\n")
	for i := 0; i < 40000; i++ {
		sb.WriteString(" nop\n")
	}
	sb.WriteString("far: nop\n")
	if _, err := Assemble(sb.String()); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("long branch error = %v", err)
	}
}

func TestUnknownOpcodeFaults(t *testing.T) {
	// Hand-plant an undefined opcode (0x3F) in memory and step it.
	p := MustAssemble(".text\nmain: nop\n")
	c := NewCPU(p)
	c.Mem.WriteWord(DefaultTextBase, 0xFC000000)
	if err := c.Step(); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("error = %v", err)
	}
}

func TestUnknownSpecialAndRegimm(t *testing.T) {
	p := MustAssemble(".text\nmain: nop\n")
	c := NewCPU(p)
	c.Mem.WriteWord(DefaultTextBase, 0x0000003F) // SPECIAL fn=0x3F
	if err := c.Step(); err == nil || !strings.Contains(err.Error(), "unknown SPECIAL") {
		t.Errorf("error = %v", err)
	}
	c2 := NewCPU(p)
	c2.Mem.WriteWord(DefaultTextBase, 0x041F0000) // REGIMM rt=0x1F
	if err := c2.Step(); err == nil || !strings.Contains(err.Error(), "unknown REGIMM") {
		t.Errorf("error = %v", err)
	}
}

func TestUnalignedPCFaults(t *testing.T) {
	p := MustAssemble(".text\nmain: nop\n")
	c := NewCPU(p)
	c.PC = 2
	if err := c.Step(); err == nil || !strings.Contains(err.Error(), "unaligned pc") {
		t.Errorf("error = %v", err)
	}
}

func TestUnterminatedPrintString(t *testing.T) {
	// A print-string syscall pointed at unterminated memory must fault
	// rather than loop forever (memory reads as zero, so craft a huge
	// non-zero region is impractical; instead point at the text segment
	// which is finite and zero-terminated far away — use the guard).
	src := `
        .text
main:   la  $a0, main
        li  $v0, 4
        syscall
`
	p := MustAssemble(src)
	c := NewCPU(p)
	for !c.Halted() && c.Cycles() < 100 {
		if err := c.Step(); err != nil {
			return // fault is acceptable
		}
	}
	// Reading zeroed memory terminates the string quickly; either way we
	// must not hang — reaching here within the cycle budget is the pass.
}

func TestStepAfterHaltIsNoop(t *testing.T) {
	c := runSrc(t, ".text\nmain: li $v0, 10\n syscall\n", 10)
	pc := c.PC
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.PC != pc || !c.Halted() {
		t.Error("Step after halt changed state")
	}
}
