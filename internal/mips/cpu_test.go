package mips

import (
	"strings"
	"testing"

	"busenc/internal/trace"
)

// runSrc assembles and runs a program to completion, returning the CPU.
func runSrc(t *testing.T, src string, maxCycles int64) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(p)
	for !c.Halted() {
		if c.Cycles() > maxCycles {
			t.Fatalf("program did not halt in %d cycles (pc=%#x)", maxCycles, c.PC)
		}
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestArithmeticAndHalt(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $t0, 21
        add  $t1, $t0, $t0
        li   $v0, 1
        move $a0, $t1
        syscall
        li   $v0, 10
        syscall
`, 100)
	if got := c.Output.String(); got != "42" {
		t.Errorf("output = %q, want 42", got)
	}
}

func TestLoadsStoresBigEndian(t *testing.T) {
	c := runSrc(t, `
        .data
w:      .word 0x11223344
        .text
main:   la   $t0, w
        lw   $t1, 0($t0)
        lbu  $t2, 0($t0)
        lbu  $t3, 3($t0)
        lh   $t4, 2($t0)
        sb   $t3, 4($t0)
        sh   $t4, 6($t0)
        li   $v0, 10
        syscall
`, 100)
	if c.Regs[RegT1] != 0x11223344 {
		t.Errorf("lw = %#x", c.Regs[RegT1])
	}
	if c.Regs[RegT2] != 0x11 {
		t.Errorf("lbu[0] = %#x (big-endian expected)", c.Regs[RegT2])
	}
	if c.Regs[RegT3] != 0x44 {
		t.Errorf("lbu[3] = %#x", c.Regs[RegT3])
	}
	if c.Regs[RegT4] != 0x3344 {
		t.Errorf("lh = %#x", c.Regs[RegT4])
	}
}

func TestSignExtensionLoads(t *testing.T) {
	c := runSrc(t, `
        .data
b:      .byte 0xFF
        .align 1
h:      .half 0x8000
        .text
main:   la  $t0, b
        lb  $t1, 0($t0)
        lbu $t2, 0($t0)
        la  $t0, h
        lh  $t3, 0($t0)
        lhu $t4, 0($t0)
        li  $v0, 10
        syscall
`, 100)
	if c.Regs[RegT1] != 0xFFFFFFFF {
		t.Errorf("lb = %#x, want sign-extended", c.Regs[RegT1])
	}
	if c.Regs[RegT2] != 0xFF {
		t.Errorf("lbu = %#x", c.Regs[RegT2])
	}
	if c.Regs[RegT3] != 0xFFFF8000 {
		t.Errorf("lh = %#x", c.Regs[RegT3])
	}
	if c.Regs[RegT4] != 0x8000 {
		t.Errorf("lhu = %#x", c.Regs[RegT4])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $t0, 0      # sum
        li   $t1, 1      # i
loop:   add  $t0, $t0, $t1
        addiu $t1, $t1, 1
        li   $t2, 11
        bne  $t1, $t2, loop
        li   $v0, 1
        move $a0, $t0
        syscall
        li   $v0, 10
        syscall
`, 1000)
	if got := c.Output.String(); got != "55" {
		t.Errorf("sum 1..10 = %q, want 55", got)
	}
}

func TestMultDivHiLo(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $t0, -6
        li   $t1, 7
        mult $t0, $t1
        mflo $t2        # -42
        li   $t3, 100
        li   $t4, 30
        div  $t3, $t4
        mflo $t5        # 3
        mfhi $t6        # 10
        multu $t3, $t3
        mflo $t7        # 10000
        li   $v0, 10
        syscall
`, 100)
	if int32(c.Regs[RegT2]) != -42 {
		t.Errorf("mult = %d", int32(c.Regs[RegT2]))
	}
	if c.Regs[RegT5] != 3 || c.Regs[RegT6] != 10 {
		t.Errorf("div = %d rem %d", c.Regs[RegT5], c.Regs[RegT6])
	}
	if c.Regs[RegT7] != 10000 {
		t.Errorf("multu = %d", c.Regs[RegT7])
	}
}

func TestSltAndPseudoBranches(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $t0, -5
        li   $t1, 3
        slt  $t2, $t0, $t1    # 1 (signed)
        sltu $t3, $t0, $t1    # 0 (unsigned: big number)
        li   $t4, 0
        blt  $t0, $t1, took
        li   $t4, 99
took:   li   $v0, 10
        syscall
`, 100)
	if c.Regs[RegT2] != 1 || c.Regs[RegT3] != 0 {
		t.Errorf("slt=%d sltu=%d", c.Regs[RegT2], c.Regs[RegT3])
	}
	if c.Regs[RegT4] != 0 {
		t.Error("blt not taken")
	}
}

func TestJalAndFunctionCall(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $a0, 5
        jal  double
        move $t0, $v0
        li   $v0, 10
        syscall
double: add  $v0, $a0, $a0
        jr   $ra
`, 100)
	if c.Regs[RegT0] != 10 {
		t.Errorf("double(5) = %d", c.Regs[RegT0])
	}
}

func TestReturnFromMainHalts(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li  $t0, 1
        jr  $ra
`, 100)
	if !c.Halted() {
		t.Error("jr $ra from main did not halt")
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	c := runSrc(t, `
        .text
main:   li   $t0, 7
        addu $zero, $t0, $t0
        move $t1, $zero
        li   $v0, 10
        syscall
`, 100)
	if c.Regs[RegZero] != 0 || c.Regs[RegT1] != 0 {
		t.Error("$zero was written")
	}
}

func TestPrintStringSyscall(t *testing.T) {
	c := runSrc(t, `
        .data
msg:    .asciiz "ok!"
        .text
main:   la  $a0, msg
        li  $v0, 4
        syscall
        li  $v0, 10
        syscall
`, 100)
	if got := c.Output.String(); got != "ok!" {
		t.Errorf("output = %q", got)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div0", "main: li $t0, 1\n li $t1, 0\n div $t0, $t1", "division by zero"},
		{"unaligned-lw", "main: li $t0, 2\n lw $t1, 0($t0)", "unaligned word load"},
		{"unaligned-sh", "main: li $t0, 1\n sh $t1, 0($t0)", "unaligned halfword store"},
		{"bad-syscall", "main: li $v0, 99\n syscall", "unknown syscall"},
	}
	for _, tc := range cases {
		p, err := Assemble(".text\n" + tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		c := NewCPU(p)
		var stepErr error
		for !c.Halted() && stepErr == nil && c.Cycles() < 100 {
			stepErr = c.Step()
		}
		if stepErr == nil || !strings.Contains(stepErr.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, stepErr, tc.want)
		}
	}
}

func TestBusProbeOrderAndKinds(t *testing.T) {
	p := MustAssemble(`
        .data
w:      .word 5
        .text
main:   la  $t0, w
        lw  $t1, 0($t0)
        sw  $t1, 4($t0)
        li  $v0, 10
        syscall
`)
	s, stats, err := Run(p, "probe", 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataReads != 1 || stats.DataWrites != 1 {
		t.Errorf("reads=%d writes=%d", stats.DataReads, stats.DataWrites)
	}
	// The muxed stream must interleave: I I I(lw) R I(sw) W I I.
	var kinds []trace.Kind
	for _, e := range s.Entries {
		kinds = append(kinds, e.Kind)
	}
	want := []trace.Kind{trace.Instr, trace.Instr, trace.Instr, trace.DataRead, trace.Instr, trace.DataWrite, trace.Instr, trace.Instr}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("cycle %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Instruction fetches are sequential here.
	if s.Entries[0].Addr != DefaultTextBase || s.Entries[1].Addr != DefaultTextBase+4 {
		t.Errorf("fetch addresses: %#x %#x", s.Entries[0].Addr, s.Entries[1].Addr)
	}
	// The data read hits the data segment.
	if s.Entries[3].Addr != DefaultDataBase {
		t.Errorf("read address = %#x", s.Entries[3].Addr)
	}
}

func TestRunTimeout(t *testing.T) {
	p := MustAssemble(".text\nmain: j main\n")
	if _, _, err := Run(p, "spin", 1000); err == nil {
		t.Error("infinite loop did not report timeout")
	}
}

func TestMemoryFootprintSparse(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x00400000, 1)
	m.WriteWord(0x7FFF0000, 2)
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d pages", m.Footprint())
	}
	if m.LoadByte(0x12345678) != 0 {
		t.Error("untouched memory must read zero")
	}
}
