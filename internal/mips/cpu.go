package mips

import (
	"fmt"
	"strings"

	"busenc/internal/trace"
)

// BusProbe observes the address bus of a running CPU: one call per bus
// cycle, in true bus order (the fetch of an instruction precedes the data
// access it performs).
type BusProbe func(addr uint32, kind trace.Kind)

// CPU is a MIPS-I subset simulator.
type CPU struct {
	PC   uint32
	Regs [32]uint32
	HI   uint32
	LO   uint32
	Mem  *Memory

	// Probe, when set, observes every address bus cycle.
	Probe BusProbe
	// Output accumulates bytes written via the print syscalls.
	Output strings.Builder

	halted bool
	cycles int64
}

// NewCPU returns a CPU loaded with the program, SP initialized below the
// conventional stack top and PC at the program entry.
func NewCPU(p *Program) *CPU {
	c := &CPU{Mem: NewMemory(), PC: p.Entry}
	for _, seg := range p.Segments {
		c.Mem.LoadBytes(seg.Base, seg.Bytes)
	}
	c.Regs[RegSP] = DefaultStackTop
	c.Regs[RegRA] = haltAddress
	return c
}

// haltAddress is a sentinel return address: returning to it halts the CPU,
// so a bare "jr $ra" from main terminates cleanly.
const haltAddress = 0xFFFFFFF0

// Halted reports whether the CPU has stopped (exit syscall, break, or
// return from main).
func (c *CPU) Halted() bool { return c.halted }

// Cycles returns the number of instructions executed.
func (c *CPU) Cycles() int64 { return c.cycles }

func (c *CPU) probe(addr uint32, kind trace.Kind) {
	if c.Probe != nil {
		c.Probe(addr, kind)
	}
}

// ErrRuntime wraps simulator-detected program faults.
type ErrRuntime struct {
	PC     uint32
	Cycle  int64
	Reason string
}

func (e *ErrRuntime) Error() string {
	return fmt.Sprintf("mips: runtime fault at pc=%#x cycle=%d: %s", e.PC, e.Cycle, e.Reason)
}

func (c *CPU) fault(reason string, args ...interface{}) error {
	return &ErrRuntime{PC: c.PC, Cycle: c.cycles, Reason: fmt.Sprintf(reason, args...)}
}

// Step executes one instruction. It returns an error on faults (bad
// opcode, unaligned access, division by zero).
func (c *CPU) Step() error {
	if c.halted {
		return nil
	}
	if c.PC == haltAddress {
		c.halted = true
		return nil
	}
	if c.PC%4 != 0 {
		return c.fault("unaligned pc")
	}
	c.probe(c.PC, trace.Instr)
	w := c.Mem.ReadWord(c.PC)
	next := c.PC + 4
	c.cycles++

	r := &c.Regs
	switch opcode(w) {
	case opSPECIAL:
		switch funct(w) {
		case fnSLL:
			r[rd(w)] = r[rt(w)] << shamt(w)
		case fnSRL:
			r[rd(w)] = r[rt(w)] >> shamt(w)
		case fnSRA:
			r[rd(w)] = uint32(int32(r[rt(w)]) >> shamt(w))
		case fnSLLV:
			r[rd(w)] = r[rt(w)] << (r[rs(w)] & 31)
		case fnSRLV:
			r[rd(w)] = r[rt(w)] >> (r[rs(w)] & 31)
		case fnSRAV:
			r[rd(w)] = uint32(int32(r[rt(w)]) >> (r[rs(w)] & 31))
		case fnJR:
			next = r[rs(w)]
		case fnJALR:
			r[rd(w)] = c.PC + 4
			next = r[rs(w)]
		case fnSYSCALL:
			if err := c.syscall(); err != nil {
				return err
			}
		case fnBREAK:
			c.halted = true
		case fnMFHI:
			r[rd(w)] = c.HI
		case fnMTHI:
			c.HI = r[rs(w)]
		case fnMFLO:
			r[rd(w)] = c.LO
		case fnMTLO:
			c.LO = r[rs(w)]
		case fnMULT:
			p := int64(int32(r[rs(w)])) * int64(int32(r[rt(w)]))
			c.HI, c.LO = uint32(uint64(p)>>32), uint32(uint64(p))
		case fnMULTU:
			p := uint64(r[rs(w)]) * uint64(r[rt(w)])
			c.HI, c.LO = uint32(p>>32), uint32(p)
		case fnDIV:
			d := int32(r[rt(w)])
			if d == 0 {
				return c.fault("integer division by zero")
			}
			n := int32(r[rs(w)])
			c.LO, c.HI = uint32(n/d), uint32(n%d)
		case fnDIVU:
			d := r[rt(w)]
			if d == 0 {
				return c.fault("integer division by zero")
			}
			c.LO, c.HI = r[rs(w)]/d, r[rs(w)]%d
		case fnADD:
			// Overflow traps are not modeled; behaves as ADDU.
			r[rd(w)] = r[rs(w)] + r[rt(w)]
		case fnADDU:
			r[rd(w)] = r[rs(w)] + r[rt(w)]
		case fnSUB:
			r[rd(w)] = r[rs(w)] - r[rt(w)]
		case fnSUBU:
			r[rd(w)] = r[rs(w)] - r[rt(w)]
		case fnAND:
			r[rd(w)] = r[rs(w)] & r[rt(w)]
		case fnOR:
			r[rd(w)] = r[rs(w)] | r[rt(w)]
		case fnXOR:
			r[rd(w)] = r[rs(w)] ^ r[rt(w)]
		case fnNOR:
			r[rd(w)] = ^(r[rs(w)] | r[rt(w)])
		case fnSLT:
			r[rd(w)] = b2u(int32(r[rs(w)]) < int32(r[rt(w)]))
		case fnSLTU:
			r[rd(w)] = b2u(r[rs(w)] < r[rt(w)])
		default:
			return c.fault("unknown SPECIAL function %#x", funct(w))
		}
	case opREGIMM:
		switch uint32(rt(w)) {
		case rtBLTZ:
			if int32(r[rs(w)]) < 0 {
				next = c.branchTarget(w)
			}
		case rtBGEZ:
			if int32(r[rs(w)]) >= 0 {
				next = c.branchTarget(w)
			}
		default:
			return c.fault("unknown REGIMM rt %#x", rt(w))
		}
	case opJ:
		next = c.PC&0xF0000000 | target(w)<<2
	case opJAL:
		r[RegRA] = c.PC + 4
		next = c.PC&0xF0000000 | target(w)<<2
	case opBEQ:
		if r[rs(w)] == r[rt(w)] {
			next = c.branchTarget(w)
		}
	case opBNE:
		if r[rs(w)] != r[rt(w)] {
			next = c.branchTarget(w)
		}
	case opBLEZ:
		if int32(r[rs(w)]) <= 0 {
			next = c.branchTarget(w)
		}
	case opBGTZ:
		if int32(r[rs(w)]) > 0 {
			next = c.branchTarget(w)
		}
	case opADDI, opADDIU:
		r[rt(w)] = r[rs(w)] + uint32(simm(w))
	case opSLTI:
		r[rt(w)] = b2u(int32(r[rs(w)]) < simm(w))
	case opSLTIU:
		r[rt(w)] = b2u(r[rs(w)] < uint32(simm(w)))
	case opANDI:
		r[rt(w)] = r[rs(w)] & imm(w)
	case opORI:
		r[rt(w)] = r[rs(w)] | imm(w)
	case opXORI:
		r[rt(w)] = r[rs(w)] ^ imm(w)
	case opLUI:
		r[rt(w)] = imm(w) << 16
	case opLB:
		a := r[rs(w)] + uint32(simm(w))
		c.probe(a, trace.DataRead)
		r[rt(w)] = uint32(int32(int8(c.Mem.LoadByte(a))))
	case opLBU:
		a := r[rs(w)] + uint32(simm(w))
		c.probe(a, trace.DataRead)
		r[rt(w)] = uint32(c.Mem.LoadByte(a))
	case opLH:
		a := r[rs(w)] + uint32(simm(w))
		if a%2 != 0 {
			return c.fault("unaligned halfword load at %#x", a)
		}
		c.probe(a, trace.DataRead)
		r[rt(w)] = uint32(int32(int16(c.Mem.ReadHalf(a))))
	case opLHU:
		a := r[rs(w)] + uint32(simm(w))
		if a%2 != 0 {
			return c.fault("unaligned halfword load at %#x", a)
		}
		c.probe(a, trace.DataRead)
		r[rt(w)] = uint32(c.Mem.ReadHalf(a))
	case opLW:
		a := r[rs(w)] + uint32(simm(w))
		if a%4 != 0 {
			return c.fault("unaligned word load at %#x", a)
		}
		c.probe(a, trace.DataRead)
		r[rt(w)] = c.Mem.ReadWord(a)
	case opSB:
		a := r[rs(w)] + uint32(simm(w))
		c.probe(a, trace.DataWrite)
		c.Mem.StoreByte(a, byte(r[rt(w)]))
	case opSH:
		a := r[rs(w)] + uint32(simm(w))
		if a%2 != 0 {
			return c.fault("unaligned halfword store at %#x", a)
		}
		c.probe(a, trace.DataWrite)
		c.Mem.WriteHalf(a, uint16(r[rt(w)]))
	case opSW:
		a := r[rs(w)] + uint32(simm(w))
		if a%4 != 0 {
			return c.fault("unaligned word store at %#x", a)
		}
		c.probe(a, trace.DataWrite)
		c.Mem.WriteWord(a, r[rt(w)])
	default:
		return c.fault("unknown opcode %#x (word %#08x)", opcode(w), w)
	}
	r[RegZero] = 0 // $zero is hardwired
	if !c.halted {
		c.PC = next
	}
	return nil
}

func (c *CPU) branchTarget(w uint32) uint32 {
	return c.PC + 4 + uint32(simm(w))<<2
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Syscall numbers follow the SPIM convention.
const (
	SysPrintInt    = 1
	SysPrintString = 4
	SysExit        = 10
	SysPrintChar   = 11
)

func (c *CPU) syscall() error {
	switch c.Regs[RegV0] {
	case SysPrintInt:
		fmt.Fprintf(&c.Output, "%d", int32(c.Regs[RegA0]))
	case SysPrintString:
		a := c.Regs[RegA0]
		for i := 0; ; i++ {
			if i > 1<<20 {
				return c.fault("unterminated string passed to print")
			}
			c.probe(a, trace.DataRead)
			b := c.Mem.LoadByte(a)
			if b == 0 {
				break
			}
			c.Output.WriteByte(b)
			a++
		}
	case SysExit:
		c.halted = true
	case SysPrintChar:
		c.Output.WriteByte(byte(c.Regs[RegA0]))
	default:
		return c.fault("unknown syscall %d", c.Regs[RegV0])
	}
	return nil
}

// RunStats summarizes a completed simulation.
type RunStats struct {
	Cycles     int64
	InstrRefs  int64
	DataReads  int64
	DataWrites int64
	Output     string
}

// Run executes the program until it halts or maxCycles instructions have
// been executed, recording the multiplexed address stream. It returns the
// stream (name tagged with the given name), run statistics, and an error
// if the program faulted or failed to halt in time.
func Run(p *Program, name string, maxCycles int64) (*trace.Stream, RunStats, error) {
	c := NewCPU(p)
	s := trace.New(name, 32)
	var stats RunStats
	c.Probe = func(addr uint32, kind trace.Kind) {
		s.Append(uint64(addr), kind)
		switch kind {
		case trace.Instr:
			stats.InstrRefs++
		case trace.DataRead:
			stats.DataReads++
		case trace.DataWrite:
			stats.DataWrites++
		}
	}
	for !c.Halted() {
		if c.Cycles() >= maxCycles {
			return s, stats, fmt.Errorf("mips: %s did not halt within %d cycles", name, maxCycles)
		}
		if err := c.Step(); err != nil {
			return s, stats, err
		}
	}
	stats.Cycles = c.Cycles()
	stats.Output = c.Output.String()
	return s, stats, nil
}
