package progs

func init() {
	register(Bench{
		Name:      "nova",
		About:     "Newton-iteration integer square roots over a 512-element array; prints the sum of roots",
		MaxCycles: 2_000_000,
		Source: `
        .text
main:
        # vals[i] = i*i + i for i in 0..511.
        la    $s0, vals
        li    $s1, 512
        li    $t9, 0
gen:
        mul   $t0, $t9, $t9
        addu  $t0, $t0, $t9
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        sw    $t0, 0($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s1, gen

        # For each value run 16 Newton steps x = (x + v/x) / 2.
        li    $t9, 0
        li    $s6, 0                # sum of roots
newton:
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        lw    $t3, 0($t2)           # v
        beq   $t3, $zero, accum0
        move  $t4, $t3              # x = v
        li    $t5, 16               # iterations
step:
        div   $t3, $t4
        mflo  $t6                   # v / x
        addu  $t4, $t4, $t6
        srl   $t4, $t4, 1           # x = (x + v/x) >> 1
        beq   $t4, $zero, stepdone
        addiu $t5, $t5, -1
        bgtz  $t5, step
stepdone:
        addu  $s6, $s6, $t4
        j     next
accum0:
        # isqrt(0) = 0, nothing to add.
next:
        addiu $t9, $t9, 1
        bne   $t9, $s1, newton

        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
vals:   .space 2048
`,
	})
}

func init() {
	register(Bench{
		Name:      "matlab",
		About:     "16x16 integer matrix multiply C = A*B with A[i][j]=i+j, B[i][j]=i^j; prints trace(C)",
		MaxCycles: 2_000_000,
		Source: `
        .text
main:
        li    $s7, 16               # matrix side
        # Fill A[i][j] = i + j and B[i][j] = i ^ j.
        la    $s0, matA
        la    $s1, matB
        li    $t8, 0                # i
filli:
        li    $t9, 0                # j
fillj:
        mul   $t0, $t8, $s7
        addu  $t0, $t0, $t9
        sll   $t0, $t0, 2           # word offset
        addu  $t1, $t8, $t9
        addu  $t2, $s0, $t0
        sw    $t1, 0($t2)
        xor   $t1, $t8, $t9
        addu  $t2, $s1, $t0
        sw    $t1, 0($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s7, fillj
        addiu $t8, $t8, 1
        bne   $t8, $s7, filli

        # C = A * B, row-major triple loop.
        la    $s2, matC
        li    $t8, 0                # i
mi:
        li    $t9, 0                # j
mj:
        li    $s5, 0                # acc
        li    $s6, 0                # k
mk:
        mul   $t0, $t8, $s7
        addu  $t0, $t0, $s6
        sll   $t0, $t0, 2
        addu  $t1, $s0, $t0
        lw    $t2, 0($t1)           # A[i][k]
        mul   $t0, $s6, $s7
        addu  $t0, $t0, $t9
        sll   $t0, $t0, 2
        addu  $t1, $s1, $t0
        lw    $t3, 0($t1)           # B[k][j]
        mul   $t4, $t2, $t3
        addu  $s5, $s5, $t4
        addiu $s6, $s6, 1
        bne   $s6, $s7, mk
        mul   $t0, $t8, $s7
        addu  $t0, $t0, $t9
        sll   $t0, $t0, 2
        addu  $t1, $s2, $t0
        sw    $s5, 0($t1)
        addiu $t9, $t9, 1
        bne   $t9, $s7, mj
        addiu $t8, $t8, 1
        bne   $t8, $s7, mi

        # trace(C) = sum C[i][i].
        li    $t8, 0
        li    $s6, 0
tr:
        mul   $t0, $t8, $s7
        addu  $t0, $t0, $t8
        sll   $t0, $t0, 2
        addu  $t1, $s2, $t0
        lw    $t2, 0($t1)
        addu  $s6, $s6, $t2
        addiu $t8, $t8, 1
        bne   $t8, $s7, tr

        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
matA:   .space 1024
matB:   .space 1024
matC:   .space 1024
`,
	})
}
