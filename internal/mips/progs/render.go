package progs

func init() {
	register(Bench{
		Name:      "ghostview",
		About:     "renders horizontal, vertical and diagonal lines into a 64x64 framebuffer and prints the lit-pixel count (expected 3104)",
		MaxCycles: 1_000_000,
		Source: `
        .text
main:
        la    $s0, fb
        li    $s7, 64               # framebuffer side
        li    $s1, 0                # k: even rows and columns
lines:
        # Horizontal line: row k.
        mul   $t0, $s1, $s7
        addu  $t0, $s0, $t0
        li    $t1, 0
hrow:
        addu  $t2, $t0, $t1
        li    $t3, 1
        sb    $t3, 0($t2)
        addiu $t1, $t1, 1
        bne   $t1, $s7, hrow
        # Vertical line: column k.
        li    $t1, 0
vcol:
        mul   $t2, $t1, $s7
        addu  $t2, $s0, $t2
        addu  $t2, $t2, $s1
        li    $t3, 1
        sb    $t3, 0($t2)
        addiu $t1, $t1, 1
        bne   $t1, $s7, vcol
        addiu $s1, $s1, 2
        blt   $s1, $s7, lines

        # Main diagonal.
        li    $t1, 0
diag:
        mul   $t2, $t1, $s7
        addu  $t2, $s0, $t2
        addu  $t2, $t2, $t1
        li    $t3, 1
        sb    $t3, 0($t2)
        addiu $t1, $t1, 1
        bne   $t1, $s7, diag

        # Count lit pixels.
        li    $t1, 0
        li    $s6, 0
        li    $t4, 4096
pcount:
        addu  $t2, $s0, $t1
        lbu   $t3, 0($t2)
        addu  $s6, $s6, $t3
        addiu $t1, $t1, 1
        bne   $t1, $t4, pcount

        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
fb:     .space 4096
`,
	})
}

func init() {
	register(Bench{
		Name:      "espresso",
		About:     "cube intersection over two LCG-filled 512-word cover arrays; prints the intersecting-pair count and the OR-reduction",
		MaxCycles: 1_000_000,
		Source: `
        .text
main:
        # Fill A[512] and B[512] with sparse LCG words (AND of two draws).
        la    $s0, cubesA
        la    $s1, cubesB
        li    $s2, 512
        li    $s3, 22222
        li    $s4, 1103515245
        li    $t9, 0
fill:
        mul   $s3, $s3, $s4
        addiu $s3, $s3, 12345
        move  $t0, $s3
        mul   $s3, $s3, $s4
        addiu $s3, $s3, 12345
        and   $t0, $t0, $s3         # sparser bits
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        sw    $t0, 0($t2)
        mul   $s3, $s3, $s4
        addiu $s3, $s3, 12345
        move  $t0, $s3
        mul   $s3, $s3, $s4
        addiu $s3, $s3, 12345
        and   $t0, $t0, $s3
        addu  $t2, $s1, $t1
        sw    $t0, 0($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s2, fill

        # Count positions whose cubes intersect, and OR-reduce everything.
        li    $t9, 0
        li    $s5, 0                # intersect count
        li    $s6, 0                # OR reduction
isect:
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        lw    $t3, 0($t2)
        addu  $t2, $s1, $t1
        lw    $t4, 0($t2)
        or    $s6, $s6, $t3
        or    $s6, $s6, $t4
        and   $t5, $t3, $t4
        beq   $t5, $zero, next
        addiu $s5, $s5, 1
next:
        addiu $t9, $t9, 1
        bne   $t9, $s2, isect

        li    $v0, 1
        move  $a0, $s5
        syscall
        li    $v0, 11
        li    $a0, 32
        syscall
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
cubesA: .space 2048
cubesB: .space 2048
`,
	})
}
