package progs

// Extra kernels beyond the paper's nine benchmarks (EXTENSION): a sorting
// kernel with heavy swap traffic and an explicit work stack, and a
// pointer-chasing kernel whose data stream has the temporal-locality
// profile (hot revisited addresses, no spatial order) that the adaptive
// and working-zone codes target.

// Extras lists the bonus benchmarks not part of the paper's tables.
func Extras() []string { return []string{"qsort", "lists"} }

func init() {
	register(Bench{
		Name:      "qsort",
		About:     "iterative Lomuto quicksort of 512 LCG words with an explicit range stack; prints inversions (0) and the xor checksum",
		MaxCycles: 3_000_000,
		Source: `
        .text
main:
        # Fill arr[512] with 16-bit LCG values.
        la    $s0, arr
        li    $s1, 512
        li    $s2, 99991
        li    $s3, 1103515245
        li    $t9, 0
fill:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 16
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        sw    $t0, 0($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s1, fill

        # Explicit stack of (lo, hi) pairs; push (0, 511).
        la    $s4, stk
        sw    $zero, 0($s4)
        li    $t0, 511
        sw    $t0, 4($s4)
        li    $s5, 1                # stack entries
qloop:
        beq   $s5, $zero, check
        addiu $s5, $s5, -1
        sll   $t0, $s5, 3
        addu  $t1, $s4, $t0
        lw    $s6, 0($t1)           # lo
        lw    $s7, 4($t1)           # hi
        bge   $s6, $s7, qloop
        # Lomuto partition with pivot arr[hi].
        sll   $t0, $s7, 2
        addu  $t0, $s0, $t0
        lw    $t8, 0($t0)           # pivot
        move  $t9, $s6              # i
        move  $t7, $s6              # j
part:
        beq   $t7, $s7, partend
        sll   $t0, $t7, 2
        addu  $t0, $s0, $t0
        lw    $t1, 0($t0)           # arr[j]
        bge   $t1, $t8, noswap
        sll   $t2, $t9, 2
        addu  $t2, $s0, $t2
        lw    $t3, 0($t2)
        sw    $t1, 0($t2)
        sw    $t3, 0($t0)
        addiu $t9, $t9, 1
noswap:
        addiu $t7, $t7, 1
        j     part
partend:
        # Swap arr[i] and arr[hi] to place the pivot.
        sll   $t0, $t9, 2
        addu  $t0, $s0, $t0
        lw    $t1, 0($t0)
        sll   $t2, $s7, 2
        addu  $t2, $s0, $t2
        lw    $t3, 0($t2)
        sw    $t3, 0($t0)
        sw    $t1, 0($t2)
        # Push (lo, i-1) if non-trivial.
        addiu $t4, $t9, -1
        bge   $s6, $t4, tryright
        sll   $t0, $s5, 3
        addu  $t0, $s4, $t0
        sw    $s6, 0($t0)
        sw    $t4, 4($t0)
        addiu $s5, $s5, 1
tryright:
        addiu $t4, $t9, 1
        bge   $t4, $s7, qloop
        sll   $t0, $s5, 3
        addu  $t0, $s4, $t0
        sw    $t4, 0($t0)
        sw    $s7, 4($t0)
        addiu $s5, $s5, 1
        j     qloop

check:
        # Count inversions (must be 0) and xor-checksum the array.
        li    $t9, 1
        li    $t6, 0                # inversions
        lw    $t5, 0($s0)           # checksum seed = arr[0]
chk:
        beq   $t9, $s1, print
        sll   $t0, $t9, 2
        addu  $t0, $s0, $t0
        lw    $t1, 0($t0)
        lw    $t2, -4($t0)
        xor   $t5, $t5, $t1
        ble   $t2, $t1, inorder
        addiu $t6, $t6, 1
inorder:
        addiu $t9, $t9, 1
        j     chk
print:
        li    $v0, 1
        move  $a0, $t6
        syscall
        li    $v0, 11
        li    $a0, 32
        syscall
        li    $v0, 1
        move  $a0, $t5
        syscall
        li    $v0, 10
        syscall

        .data
arr:    .space 2048
stk:    .space 8192
`,
	})
}

func init() {
	register(Bench{
		Name:      "lists",
		About:     "builds a 256-node linked list in Fisher-Yates-shuffled order and traverses it 10 times; prints the sum (326400)",
		MaxCycles: 3_000_000,
		Source: `
        .text
main:
        la    $s0, nodes
        li    $s1, 256
        la    $s2, perm
        # perm[i] = i
        li    $t9, 0
initp:
        sll   $t0, $t9, 2
        addu  $t0, $s2, $t0
        sw    $t9, 0($t0)
        addiu $t9, $t9, 1
        bne   $t9, $s1, initp

        # Fisher-Yates shuffle with an LCG.
        li    $s3, 777
        li    $s4, 1103515245
        li    $t9, 255
shuf:
        blez  $t9, build
        mul   $s3, $s3, $s4
        addiu $s3, $s3, 12345
        srl   $t0, $s3, 8
        addiu $t1, $t9, 1
        divu  $t0, $t1
        mfhi  $t2                   # j = rnd % (i+1)
        sll   $t3, $t9, 2
        addu  $t3, $s2, $t3
        lw    $t4, 0($t3)
        sll   $t5, $t2, 2
        addu  $t5, $s2, $t5
        lw    $t6, 0($t5)
        sw    $t6, 0($t3)
        sw    $t4, 0($t5)
        addiu $t9, $t9, -1
        j     shuf

build:
        # node[perm[k]] = {value: perm[k], next: &node[perm[k+1]]}.
        li    $t9, 0
bloop:
        addiu $t0, $s1, -1
        beq   $t9, $t0, lastnode
        sll   $t1, $t9, 2
        addu  $t1, $s2, $t1
        lw    $t2, 0($t1)
        lw    $t3, 4($t1)
        sll   $t4, $t2, 3
        addu  $t4, $s0, $t4
        sw    $t2, 0($t4)
        sll   $t5, $t3, 3
        addu  $t5, $s0, $t5
        sw    $t5, 4($t4)
        addiu $t9, $t9, 1
        j     bloop
lastnode:
        sll   $t1, $t9, 2
        addu  $t1, $s2, $t1
        lw    $t2, 0($t1)
        sll   $t4, $t2, 3
        addu  $t4, $s0, $t4
        sw    $t2, 0($t4)
        sw    $zero, 4($t4)         # terminator

        # Traverse the list 10 times, summing node values.
        li    $s5, 10
        li    $s6, 0
trav:
        blez  $s5, print
        lw    $t2, 0($s2)           # head index = perm[0]
        sll   $t4, $t2, 3
        addu  $t0, $s0, $t4
walk:
        beq   $t0, $zero, pass
        lw    $t1, 0($t0)
        addu  $s6, $s6, $t1
        lw    $t0, 4($t0)
        j     walk
pass:
        addiu $s5, $s5, -1
        j     trav
print:
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
nodes:  .space 2048
perm:   .space 1024
`,
	})
}
