package progs

func init() {
	register(Bench{
		Name:      "gzip",
		About:     "run-length compression of an LCG-generated buffer; prints encoded length and checksum",
		MaxCycles: 1_000_000,
		Source: `
        .text
main:
        # Fill src[2048] with 3-bit LCG values (small alphabet -> runs).
        la    $s0, src
        li    $s1, 2048
        li    $s2, 12345            # LCG state
        li    $s3, 1103515245
        li    $t9, 0
fill:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 28
        andi  $t0, $t0, 7
        addu  $t1, $s0, $t9
        sb    $t0, 0($t1)
        addiu $t9, $t9, 1
        bne   $t9, $s1, fill

        # RLE-encode src into (count, value) byte pairs at dst.
        la    $s4, dst
        li    $t9, 0                # src index
        li    $s5, 0                # dst length
encode:
        bge   $t9, $s1, cksum
        addu  $t1, $s0, $t9
        lbu   $t2, 0($t1)           # run value
        li    $t3, 0                # run length
run:
        addu  $t1, $s0, $t9
        lbu   $t4, 0($t1)
        bne   $t4, $t2, emit
        addiu $t3, $t3, 1
        addiu $t9, $t9, 1
        li    $t5, 255
        beq   $t3, $t5, emit        # cap run length at one byte
        bne   $t9, $s1, run
emit:
        addu  $t6, $s4, $s5
        sb    $t3, 0($t6)
        addiu $s5, $s5, 1
        addu  $t6, $s4, $s5
        sb    $t2, 0($t6)
        addiu $s5, $s5, 1
        j     encode

        # Checksum the encoded buffer.
cksum:
        li    $t9, 0
        li    $s6, 0
cks:
        beq   $t9, $s5, print
        addu  $t1, $s4, $t9
        lbu   $t2, 0($t1)
        add   $s6, $s6, $t2
        addiu $t9, $t9, 1
        j     cks
print:
        li    $v0, 1
        move  $a0, $s5
        syscall
        li    $v0, 11
        li    $a0, 32
        syscall
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
src:    .space 2048
dst:    .space 4200
`,
	})
}

func init() {
	register(Bench{
		Name:      "gunzip",
		About:     "run-length decompression of LCG-generated (count,value) pairs; prints output length and checksum",
		MaxCycles: 1_000_000,
		Source: `
        .text
main:
        # Generate 1024 (count, value) pairs, counts in 1..8.
        la    $s0, enc
        li    $s1, 1024
        li    $s2, 987654321
        li    $s3, 1103515245
        li    $t9, 0
genp:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 24
        andi  $t0, $t0, 7
        addiu $t0, $t0, 1           # count 1..8
        sll   $t1, $t9, 1
        addu  $t2, $s0, $t1
        sb    $t0, 0($t2)
        srl   $t0, $s2, 16
        andi  $t0, $t0, 255
        sb    $t0, 1($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s1, genp

        # Decode into dst.
        la    $s4, dst
        li    $s5, 0                # output length
        li    $t9, 0
dec:
        beq   $t9, $s1, cksum
        sll   $t1, $t9, 1
        addu  $t2, $s0, $t1
        lbu   $t3, 0($t2)           # count
        lbu   $t4, 1($t2)           # value
rep:
        addu  $t5, $s4, $s5
        sb    $t4, 0($t5)
        addiu $s5, $s5, 1
        addiu $t3, $t3, -1
        bgtz  $t3, rep
        addiu $t9, $t9, 1
        j     dec

cksum:
        li    $t9, 0
        li    $s6, 0
cks:
        beq   $t9, $s5, print
        addu  $t1, $s4, $t9
        lbu   $t2, 0($t1)
        add   $s6, $s6, $t2
        addiu $t9, $t9, 1
        j     cks
print:
        li    $v0, 1
        move  $a0, $s5
        syscall
        li    $v0, 11
        li    $a0, 32
        syscall
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
enc:    .space 2048
dst:    .space 8400
`,
	})
}
