// Package progs bundles the nine benchmark programs used to generate
// address streams. The paper measured MIPS traces of gzip, gunzip,
// ghostview, espresso, nova, jedi, latex, matlab and oracle; the original
// binaries and inputs are not available, so each bundled program is a
// small MIPS assembly kernel exercising the same *kind* of computation
// (compression, decompression, rendering, logic minimization, numerics,
// searching, text formatting, linear algebra, key-value lookups), sized so
// its address stream exhibits the corresponding locality class.
package progs

import (
	"fmt"
	"sort"

	"busenc/internal/mips"
)

// Bench is one bundled benchmark program.
type Bench struct {
	// Name matches the paper's benchmark name.
	Name string
	// About describes what the kernel computes.
	About string
	// Source is the MIPS assembly text.
	Source string
	// MaxCycles bounds the simulation.
	MaxCycles int64
}

// Assemble returns the assembled program.
func (b Bench) Assemble() (*mips.Program, error) {
	p, err := mips.Assemble(b.Source)
	if err != nil {
		return nil, fmt.Errorf("progs: %s: %w", b.Name, err)
	}
	return p, nil
}

var all = map[string]Bench{}

func register(b Bench) {
	if _, dup := all[b.Name]; dup {
		panic("progs: duplicate benchmark " + b.Name)
	}
	all[b.Name] = b
}

// Names lists the bundled benchmarks, sorted.
func Names() []string {
	out := make([]string, 0, len(all))
	for n := range all {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a bundled benchmark by name.
func Get(name string) (Bench, error) {
	b, ok := all[name]
	if !ok {
		return Bench{}, fmt.Errorf("progs: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// PaperOrder lists the benchmarks in the row order of the paper's tables.
func PaperOrder() []string {
	return []string{"gzip", "gunzip", "ghostview", "espresso", "nova", "jedi", "latex", "matlab", "oracle"}
}
