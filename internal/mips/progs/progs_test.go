package progs

import (
	"fmt"
	"strings"
	"testing"

	"busenc/internal/mips"
	"busenc/internal/workload"
)

func runBench(t *testing.T, name string) (string, *mips.CPU) {
	t.Helper()
	b, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := mips.NewCPU(p)
	for !c.Halted() {
		if c.Cycles() > b.MaxCycles {
			t.Fatalf("%s did not halt within %d cycles (pc=%#x)", name, b.MaxCycles, c.PC)
		}
		if err := c.Step(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return c.Output.String(), c
}

func TestAllBenchmarksAssembleAndHalt(t *testing.T) {
	for _, name := range Names() {
		out, c := runBench(t, name)
		if out == "" {
			t.Errorf("%s produced no output", name)
		}
		if c.Cycles() < 10000 {
			t.Errorf("%s ran only %d cycles; stream too short to be useful", name, c.Cycles())
		}
		t.Logf("%s: %d cycles, output %q", name, c.Cycles(), out)
	}
}

func TestPaperOrderCoversAll(t *testing.T) {
	if len(PaperOrder())+len(Extras()) != len(Names()) {
		t.Fatalf("PaperOrder (%d) + Extras (%d) != registry (%d)",
			len(PaperOrder()), len(Extras()), len(Names()))
	}
	for _, n := range append(PaperOrder(), Extras()...) {
		if _, err := Get(n); err != nil {
			t.Error(err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fortnite"); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

// lcg replicates the benchmarks' generator.
func lcg(s uint32) uint32 { return s*1103515245 + 12345 }

func TestGzipOutputMatchesReference(t *testing.T) {
	// Replicate: fill 2048 bytes with (s>>28)&7, RLE with runs capped at
	// 255, checksum the (count, value) stream.
	s := uint32(12345)
	src := make([]byte, 2048)
	for i := range src {
		s = lcg(s)
		src[i] = byte(s >> 28 & 7)
	}
	var dst []byte
	for i := 0; i < len(src); {
		v := src[i]
		run := byte(0)
		for i < len(src) && src[i] == v && run < 255 {
			run++
			i++
		}
		dst = append(dst, run, v)
	}
	sum := 0
	for _, b := range dst {
		sum += int(b)
	}
	want := fmt.Sprintf("%d %d", len(dst), sum)
	got, _ := runBench(t, "gzip")
	if got != want {
		t.Errorf("gzip output = %q, want %q", got, want)
	}
}

func TestGunzipOutputMatchesReference(t *testing.T) {
	s := uint32(987654321)
	total, sum := 0, 0
	for i := 0; i < 1024; i++ {
		s = lcg(s)
		count := int(s>>24&7) + 1
		val := int(s >> 16 & 255)
		total += count
		sum += count * val
	}
	want := fmt.Sprintf("%d %d", total, sum)
	got, _ := runBench(t, "gunzip")
	if got != want {
		t.Errorf("gunzip output = %q, want %q", got, want)
	}
}

func TestGhostviewExpectedPixelCount(t *testing.T) {
	// 32 even rows (2048) + 32 even columns (2048) - overlap (1024)
	// + 32 odd diagonal pixels = 3104.
	got, _ := runBench(t, "ghostview")
	if got != "3104" {
		t.Errorf("ghostview output = %q, want 3104", got)
	}
}

func TestMatlabTraceMatchesReference(t *testing.T) {
	const n = 16
	want := 0
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			want += (i + k) * (k ^ i)
		}
	}
	got, _ := runBench(t, "matlab")
	if got != fmt.Sprint(want) {
		t.Errorf("matlab output = %q, want %d", got, want)
	}
}

func TestNovaRootsMatchReference(t *testing.T) {
	// Same Newton iteration in Go: 16 steps of x = (x + v/x) / 2.
	sum := uint32(0)
	for i := uint32(0); i < 512; i++ {
		v := i*i + i
		if v == 0 {
			continue
		}
		x := v
		for it := 0; it < 16 && x != 0; it++ {
			x = (x + v/x) >> 1
			if x == 0 {
				break
			}
		}
		sum += x
	}
	got, _ := runBench(t, "nova")
	if got != fmt.Sprint(sum) {
		t.Errorf("nova output = %q, want %d", got, sum)
	}
}

func TestJediMatchesReference(t *testing.T) {
	s := uint32(31337)
	text := make([]byte, 4096)
	for i := range text {
		s = lcg(s)
		text[i] = byte(s>>27&3) + 'a'
	}
	want := strings.Count(string(text), "abca")
	// strings.Count does not count overlapping matches; "abcabca" has an
	// overlap only if the pattern overlaps itself, which "abca" does
	// (suffix "a" = prefix "a"). Count manually like the kernel does.
	want = 0
	for i := 0; i+4 <= len(text); i++ {
		if string(text[i:i+4]) == "abca" {
			want++
		}
	}
	got, _ := runBench(t, "jedi")
	if got != fmt.Sprint(want) {
		t.Errorf("jedi output = %q, want %d", got, want)
	}
}

func TestOracleHitsAtLeastInsertedKeys(t *testing.T) {
	got, _ := runBench(t, "oracle")
	var hits int
	if _, err := fmt.Sscan(got, &hits); err != nil {
		t.Fatalf("oracle output %q: %v", got, err)
	}
	if hits < 512 || hits > 1024 {
		t.Errorf("oracle hits = %d, want within [512, 1024]", hits)
	}
}

func TestLatexOutputsTwoCounts(t *testing.T) {
	got, _ := runBench(t, "latex")
	var words, lines int
	if _, err := fmt.Sscanf(got, "%d %d", &words, &lines); err != nil {
		t.Fatalf("latex output %q: %v", got, err)
	}
	// ~6144 chars, 1/8 space probability: roughly 680 words; wraps at 72.
	if words < 300 || words > 1500 {
		t.Errorf("latex words = %d, implausible", words)
	}
	if lines < 40 || lines > 200 {
		t.Errorf("latex lines = %d, implausible", lines)
	}
}

func TestBenchmarkStreamsHaveExpectedLocalityClasses(t *testing.T) {
	// On average over the suite, instruction streams must be far more
	// sequential than data streams — the property the paper's experiments
	// hinge on. (Individual kernels may invert it: nova walks one array
	// strictly in order, and the paper itself notes arrays are the
	// sequential exception among data accesses.)
	var instrSum, dataSum float64
	for _, name := range PaperOrder() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		stream, _, err := mips.Run(p, name, b.MaxCycles)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		instr := stream.InstrOnly().InSeqFraction(workload.Stride)
		data := stream.DataOnly().InSeqFraction(workload.Stride)
		if instr < 0.4 {
			t.Errorf("%s: instruction stream in-seq fraction %v is too low", name, instr)
		}
		instrSum += instr
		dataSum += data
		t.Logf("%s: instr in-seq %.3f, data in-seq %.3f, refs %d", name, instr, data, stream.Len())
	}
	n := float64(len(PaperOrder()))
	if instrSum/n < 2*(dataSum/n) {
		t.Errorf("suite averages: instr %.3f vs data %.3f — instruction streams should dominate", instrSum/n, dataSum/n)
	}
}

func TestQsortSortsAndChecksums(t *testing.T) {
	// Replicate the kernel: fill with s>>16 of the LCG, xor-checksum.
	// The xor of a multiset is permutation-invariant, so the checksum
	// equals the xor of the inputs; inversions must be zero.
	s := uint32(99991)
	sum := uint32(0)
	for i := 0; i < 512; i++ {
		s = lcg(s)
		sum ^= s >> 16
	}
	got, _ := runBench(t, "qsort")
	want := fmt.Sprintf("0 %d", sum)
	if got != want {
		t.Errorf("qsort output = %q, want %q", got, want)
	}
}

func TestListsTraversalSum(t *testing.T) {
	// 10 traversals of values 0..255: 10 * 255*256/2 = 326400.
	got, _ := runBench(t, "lists")
	if got != "326400" {
		t.Errorf("lists output = %q, want 326400", got)
	}
}

func TestListsDataStreamIsPointerChasing(t *testing.T) {
	b, err := Get("lists")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := mips.Run(p, "lists", b.MaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	// The tail of the run is the traversal phase (the setup's array init
	// and shuffle are sequential walks): temporally hot (few distinct
	// addresses revisited) but spatially scattered (low in-seq).
	data := stream.DataOnly()
	tail := data.Slice(data.Len()*2/3, data.Len())
	// Each node visit loads value then next (addr, addr+4): half the
	// pairs are field-sequential, but *node-to-node* order is shuffled,
	// so the fraction saturates near 0.5 instead of an array walk's ~1.
	if f := tail.InSeqFraction(workload.Stride); f > 0.6 {
		t.Errorf("pointer chase in-seq fraction = %.3f, want ~0.5 (field pairs only)", f)
	}
	st := tail.Analyze(workload.Stride)
	if st.UniqueAddrs > 600 {
		t.Errorf("pointer chase touches %d unique addresses; expected a hot working set", st.UniqueAddrs)
	}
}
