package progs

func init() {
	register(Bench{
		Name:      "jedi",
		About:     "naive substring search for a 4-byte pattern in LCG-generated text; prints match count",
		MaxCycles: 2_000_000,
		Source: `
        .text
main:
        # text[4096] over alphabet 'a'..'d'.
        la    $s0, text
        li    $s1, 4096
        li    $s2, 31337
        li    $s3, 1103515245
        li    $t9, 0
gen:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 27
        andi  $t0, $t0, 3
        addiu $t0, $t0, 97          # 'a' + 0..3
        addu  $t1, $s0, $t9
        sb    $t0, 0($t1)
        addiu $t9, $t9, 1
        bne   $t9, $s1, gen

        # Count occurrences of the pattern.
        la    $s4, pat
        li    $s5, 4                # pattern length
        li    $s6, 0                # matches
        li    $t9, 0                # text position
        subu  $s7, $s1, $s5         # last start position (inclusive)
search:
        bgt   $t9, $s7, report
        li    $t5, 0                # pattern index
cmp:
        addu  $t1, $s0, $t9
        addu  $t1, $t1, $t5
        lbu   $t2, 0($t1)
        addu  $t3, $s4, $t5
        lbu   $t4, 0($t3)
        bne   $t2, $t4, miss
        addiu $t5, $t5, 1
        bne   $t5, $s5, cmp
        addiu $s6, $s6, 1           # full match
miss:
        addiu $t9, $t9, 1
        j     search
report:
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
pat:    .asciiz "abca"
text:   .space 4096
`,
	})
}

func init() {
	register(Bench{
		Name:      "latex",
		About:     "word counting and greedy line wrapping at column 72 over LCG-generated text; prints words and lines",
		MaxCycles: 2_000_000,
		Source: `
        .text
main:
        # text[6144]: letters with ~1/8 probability of a space.
        la    $s0, text
        li    $s1, 6144
        li    $s2, 777777
        li    $s3, 1103515245
        li    $t9, 0
gen:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 24
        andi  $t1, $t0, 7
        bne   $t1, $zero, letter
        li    $t0, 32               # space
        j     store
letter:
        andi  $t0, $t0, 15
        addiu $t0, $t0, 97          # 'a'..'p'
store:
        addu  $t1, $s0, $t9
        sb    $t0, 0($t1)
        addiu $t9, $t9, 1
        bne   $t9, $s1, gen

        # Pass 1: count words (space -> letter transitions).
        li    $t9, 0
        li    $s5, 0                # words
        li    $t6, 1                # previous-was-space flag
words:
        addu  $t1, $s0, $t9
        lbu   $t2, 0($t1)
        li    $t3, 32
        beq   $t2, $t3, wspace
        beq   $t6, $zero, wnext     # still inside a word
        addiu $s5, $s5, 1
        li    $t6, 0
        j     wnext
wspace:
        li    $t6, 1
wnext:
        addiu $t9, $t9, 1
        bne   $t9, $s1, words

        # Pass 2: greedy wrap at column 72: scan words, break lines.
        li    $t9, 0
        li    $s6, 1                # lines
        li    $t7, 0                # column
        li    $t6, 1                # previous-was-space
wrap:
        addu  $t1, $s0, $t9
        lbu   $t2, 0($t1)
        li    $t3, 32
        beq   $t2, $t3, wsp2
        addiu $t7, $t7, 1           # letter advances the column
        li    $t6, 0
        li    $t4, 72
        blt   $t7, $t4, wnext2
        addiu $s6, $s6, 1           # wrap
        li    $t7, 0
        j     wnext2
wsp2:
        beq   $t6, $zero, advsp
        j     wnext2                # collapse runs of spaces
advsp:
        addiu $t7, $t7, 1
        li    $t6, 1
wnext2:
        addiu $t9, $t9, 1
        bne   $t9, $s1, wrap

        li    $v0, 1
        move  $a0, $s5
        syscall
        li    $v0, 11
        li    $a0, 32
        syscall
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
text:   .space 6144
`,
	})
}

func init() {
	register(Bench{
		Name:      "oracle",
		About:     "open-addressing hash table: insert 512 LCG keys into 2048 slots, then probe 1024 keys; prints hit count",
		MaxCycles: 2_000_000,
		Source: `
        .text
main:
        # Insert 512 keys. Table: 2048 word slots, 0 = empty.
        la    $s0, table
        li    $s1, 2047             # index mask
        li    $s2, 424242           # LCG state
        li    $s3, 1103515245
        li    $s4, 512
        li    $t9, 0
insert:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 8
        bne   $t0, $zero, okkey
        li    $t0, 1                # avoid the empty marker
okkey:
        # h = key & mask; linear probe for an empty slot.
        and   $t1, $t0, $s1
probe:
        sll   $t2, $t1, 2
        addu  $t3, $s0, $t2
        lw    $t4, 0($t3)
        beq   $t4, $zero, place
        beq   $t4, $t0, placed      # duplicate key already present
        addiu $t1, $t1, 1
        and   $t1, $t1, $s1
        j     probe
place:
        sw    $t0, 0($t3)
placed:
        addiu $t9, $t9, 1
        bne   $t9, $s4, insert

        # Probe 1024 keys from a re-seeded LCG: the first 512 hit,
        # the rest mostly miss.
        li    $s2, 424242
        li    $s5, 0                # hits
        li    $s6, 1024
        li    $t9, 0
lookup:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        srl   $t0, $s2, 8
        bne   $t0, $zero, okkey2
        li    $t0, 1
okkey2:
        and   $t1, $t0, $s1
probe2:
        sll   $t2, $t1, 2
        addu  $t3, $s0, $t2
        lw    $t4, 0($t3)
        beq   $t4, $zero, misskey
        beq   $t4, $t0, hitkey
        addiu $t1, $t1, 1
        and   $t1, $t1, $s1
        j     probe2
hitkey:
        addiu $s5, $s5, 1
misskey:
        addiu $t9, $t9, 1
        bne   $t9, $s6, lookup

        li    $v0, 1
        move  $a0, $s5
        syscall
        li    $v0, 10
        syscall

        .data
table:  .space 8192
`,
	})
}
