package mips

import (
	"fmt"
	"strings"
)

var regAliases = map[string]int{
	"$zero": 0, "$at": 1, "$v0": 2, "$v1": 3,
	"$a0": 4, "$a1": 5, "$a2": 6, "$a3": 7,
	"$t0": 8, "$t1": 9, "$t2": 10, "$t3": 11,
	"$t4": 12, "$t5": 13, "$t6": 14, "$t7": 15,
	"$s0": 16, "$s1": 17, "$s2": 18, "$s3": 19,
	"$s4": 20, "$s5": 21, "$s6": 22, "$s7": 23,
	"$t8": 24, "$t9": 25, "$k0": 26, "$k1": 27,
	"$gp": 28, "$sp": 29, "$fp": 30, "$s8": 30, "$ra": 31,
}

func parseReg(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "$") {
		if n, err := parseImm32(s[1:]); err == nil && n < 32 {
			return int(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMem parses "offset(base)" or "(base)" or "offset" forms.
func (a *assembler) parseMem(op string) (int32, int, error) {
	op = strings.TrimSpace(op)
	open := strings.IndexByte(op, '(')
	if open < 0 {
		v, err := a.value(op)
		if err != nil {
			return 0, 0, err
		}
		return int32(v), RegZero, nil
	}
	close := strings.IndexByte(op, ')')
	if close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", op)
	}
	base, err := parseReg(op[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(op[:open])
	if offStr == "" {
		return 0, base, nil
	}
	off, err := a.value(offStr)
	if err != nil {
		return 0, 0, err
	}
	return int32(off), base, nil
}

func fitsSigned16(v int32) bool { return v >= -32768 && v <= 32767 }

// branchOff computes the signed word offset field for a branch located at
// pc targeting the label address.
func branchOff(pc, target uint32) (uint32, error) {
	diff := int32(target) - int32(pc+4)
	if diff%4 != 0 {
		return 0, fmt.Errorf("branch target %#x not word-aligned relative to %#x", target, pc)
	}
	words := diff / 4
	if !fitsSigned16(words) {
		return 0, fmt.Errorf("branch target out of range (%d words)", words)
	}
	return uint32(words) & 0xFFFF, nil
}

var r3ops = map[string]uint32{
	"add": fnADD, "addu": fnADDU, "sub": fnSUB, "subu": fnSUBU,
	"and": fnAND, "or": fnOR, "xor": fnXOR, "nor": fnNOR,
	"slt": fnSLT, "sltu": fnSLTU,
}

var shiftOps = map[string]uint32{"sll": fnSLL, "srl": fnSRL, "sra": fnSRA}
var shiftVOps = map[string]uint32{"sllv": fnSLLV, "srlv": fnSRLV, "srav": fnSRAV}
var hiloOps = map[string]uint32{"mult": fnMULT, "multu": fnMULTU, "div": fnDIV, "divu": fnDIVU}

var immOps = map[string]uint32{
	"addi": opADDI, "addiu": opADDIU, "slti": opSLTI, "sltiu": opSLTIU,
	"andi": opANDI, "ori": opORI, "xori": opXORI,
}

var memOps = map[string]uint32{
	"lw": opLW, "sw": opSW, "lb": opLB, "lbu": opLBU,
	"lh": opLH, "lhu": opLHU, "sb": opSB, "sh": opSH,
}

// encode expands one parsed statement into machine words.
func (a *assembler) encode(st *statement) ([]uint32, error) {
	ops := st.ops
	need := func(n int) error {
		if len(ops) != n {
			return a.errf(st, "%s needs %d operands, got %d", st.mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (int, error) {
		r, err := parseReg(ops[i])
		if err != nil {
			return 0, a.errf(st, "%v", err)
		}
		return r, nil
	}

	m := st.mnem
	_, isR3 := r3ops[m]
	_, isShift := shiftOps[m]
	_, isShiftV := shiftVOps[m]
	_, isHiLo := hiloOps[m]
	_, isImm := immOps[m]
	_, isMem := memOps[m]

	switch {
	case isR3:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(r3ops[m], rd, rs, rt, 0)}, nil

	case isShift:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		sh, err := a.value(ops[2])
		if err != nil || sh > 31 {
			return nil, a.errf(st, "bad shift amount %q", ops[2])
		}
		return []uint32{encodeR(shiftOps[m], rd, 0, rt, sh)}, nil

	case isShiftV:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		rs, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(shiftVOps[m], rd, rs, rt, 0)}, nil

	case isHiLo:
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(hiloOps[m], 0, rs, rt, 0)}, nil

	case m == "mfhi" || m == "mflo":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		fn := uint32(fnMFHI)
		if m == "mflo" {
			fn = fnMFLO
		}
		return []uint32{encodeR(fn, rd, 0, 0, 0)}, nil

	case m == "mthi" || m == "mtlo":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		fn := uint32(fnMTHI)
		if m == "mtlo" {
			fn = fnMTLO
		}
		return []uint32{encodeR(fn, 0, rs, 0, 0)}, nil

	case m == "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(fnJR, 0, rs, 0, 0)}, nil

	case m == "jalr":
		var rd, rs int
		var err error
		switch len(ops) {
		case 1:
			rd = RegRA
			if rs, err = reg(0); err != nil {
				return nil, err
			}
		case 2:
			if rd, err = reg(0); err != nil {
				return nil, err
			}
			if rs, err = reg(1); err != nil {
				return nil, err
			}
		default:
			return nil, a.errf(st, "jalr needs 1 or 2 operands")
		}
		return []uint32{encodeR(fnJALR, rd, rs, 0, 0)}, nil

	case m == "syscall":
		return []uint32{encodeR(fnSYSCALL, 0, 0, 0, 0)}, nil
	case m == "break":
		return []uint32{encodeR(fnBREAK, 0, 0, 0, 0)}, nil
	case m == "nop":
		return []uint32{0}, nil

	case isImm:
		if err := need(3); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		v, err := a.value(ops[2])
		if err != nil {
			return nil, a.errf(st, "immediate: %v", err)
		}
		logical := m == "andi" || m == "ori" || m == "xori"
		if logical {
			if v > 0xFFFF {
				return nil, a.errf(st, "immediate %#x exceeds 16 bits", v)
			}
		} else if !fitsSigned16(int32(v)) {
			return nil, a.errf(st, "immediate %d out of signed 16-bit range", int32(v))
		}
		return []uint32{encodeI(immOps[m], rt, rs, v)}, nil

	case m == "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := a.value(ops[1])
		if err != nil || v > 0xFFFF {
			return nil, a.errf(st, "bad lui immediate %q", ops[1])
		}
		return []uint32{encodeI(opLUI, rt, 0, v)}, nil

	case isMem:
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, base, err := a.parseMem(ops[1])
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		if !fitsSigned16(off) {
			return nil, a.errf(st, "offset %d out of range", off)
		}
		return []uint32{encodeI(memOps[m], rt, base, uint32(off)&0xFFFF)}, nil

	case m == "beq" || m == "bne":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[2])
		if err != nil {
			return nil, a.errf(st, "branch target: %v", err)
		}
		off, err := branchOff(st.addr, tgt)
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		op := uint32(opBEQ)
		if m == "bne" {
			op = opBNE
		}
		return []uint32{encodeI(op, rt, rs, off)}, nil

	case m == "blez" || m == "bgtz" || m == "bltz" || m == "bgez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[1])
		if err != nil {
			return nil, a.errf(st, "branch target: %v", err)
		}
		off, err := branchOff(st.addr, tgt)
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		switch m {
		case "blez":
			return []uint32{encodeI(opBLEZ, 0, rs, off)}, nil
		case "bgtz":
			return []uint32{encodeI(opBGTZ, 0, rs, off)}, nil
		case "bltz":
			return []uint32{encodeI(opREGIMM, rtBLTZ, rs, off)}, nil
		default:
			return []uint32{encodeI(opREGIMM, rtBGEZ, rs, off)}, nil
		}

	case m == "beqz" || m == "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[1])
		if err != nil {
			return nil, a.errf(st, "branch target: %v", err)
		}
		off, err := branchOff(st.addr, tgt)
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		op := uint32(opBEQ)
		if m == "bnez" {
			op = opBNE
		}
		return []uint32{encodeI(op, 0, rs, off)}, nil

	case m == "b":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[0])
		if err != nil {
			return nil, a.errf(st, "branch target: %v", err)
		}
		off, err := branchOff(st.addr, tgt)
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		return []uint32{encodeI(opBEQ, 0, 0, off)}, nil

	case m == "j" || m == "jal":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[0])
		if err != nil {
			return nil, a.errf(st, "jump target: %v", err)
		}
		if tgt%4 != 0 {
			return nil, a.errf(st, "jump target %#x not aligned", tgt)
		}
		op := uint32(opJ)
		if m == "jal" {
			op = opJAL
		}
		return []uint32{encodeJ(op, tgt>>2)}, nil

	case m == "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(fnADDU, rd, rs, 0, 0)}, nil

	case m == "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(fnSUBU, rd, 0, rs, 0)}, nil

	case m == "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []uint32{encodeR(fnNOR, rd, rs, 0, 0)}, nil

	case m == "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := parseImm32(ops[1])
		if err != nil {
			return nil, a.errf(st, "li immediate: %v", err)
		}
		switch {
		case fitsSigned16(int32(v)):
			return []uint32{encodeI(opADDIU, rt, 0, v&0xFFFF)}, nil
		case v&0xFFFF0000 == 0:
			return []uint32{encodeI(opORI, rt, 0, v)}, nil
		case v&0xFFFF == 0:
			return []uint32{encodeI(opLUI, rt, 0, v>>16)}, nil
		default:
			return []uint32{
				encodeI(opLUI, rt, 0, v>>16),
				encodeI(opORI, rt, rt, v&0xFFFF),
			}, nil
		}

	case m == "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := a.value(ops[1])
		if err != nil {
			return nil, a.errf(st, "la target: %v", err)
		}
		return []uint32{
			encodeI(opLUI, rt, 0, v>>16),
			encodeI(opORI, rt, rt, v&0xFFFF),
		}, nil

	case m == "mul":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{
			encodeR(fnMULT, 0, rs, rt, 0),
			encodeR(fnMFLO, rd, 0, 0, 0),
		}, nil

	case m == "rem":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []uint32{
			encodeR(fnDIV, 0, rs, rt, 0),
			encodeR(fnMFHI, rd, 0, 0, 0),
		}, nil

	case m == "blt" || m == "bge" || m == "bgt" || m == "ble" || m == "bltu" || m == "bgeu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[2])
		if err != nil {
			return nil, a.errf(st, "branch target: %v", err)
		}
		// The branch is the second emitted word.
		off, err := branchOff(st.addr+4, tgt)
		if err != nil {
			return nil, a.errf(st, "%v", err)
		}
		slt := uint32(fnSLT)
		if m == "bltu" || m == "bgeu" {
			slt = fnSLTU
		}
		switch m {
		case "blt", "bltu": // rs < rt
			return []uint32{encodeR(slt, RegAT, rs, rt, 0), encodeI(opBNE, 0, RegAT, off)}, nil
		case "bge", "bgeu": // !(rs < rt)
			return []uint32{encodeR(slt, RegAT, rs, rt, 0), encodeI(opBEQ, 0, RegAT, off)}, nil
		case "bgt": // rt < rs
			return []uint32{encodeR(slt, RegAT, rt, rs, 0), encodeI(opBNE, 0, RegAT, off)}, nil
		default: // ble: !(rt < rs)
			return []uint32{encodeR(slt, RegAT, rt, rs, 0), encodeI(opBEQ, 0, RegAT, off)}, nil
		}
	}
	return nil, a.errf(st, "unknown mnemonic %q", st.mnem)
}
