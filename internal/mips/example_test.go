package mips_test

import (
	"fmt"
	"log"

	"busenc/internal/mips"
)

// ExampleAssemble assembles and runs a small program, collecting its
// address trace.
func ExampleAssemble() {
	prog, err := mips.Assemble(`
        .data
msg:    .asciiz "hi"
        .text
main:   la  $a0, msg
        li  $v0, 4
        syscall
        li  $v0, 10
        syscall
`)
	if err != nil {
		log.Fatal(err)
	}
	stream, stats, err := mips.Run(prog, "hello", 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %q\n", stats.Output)
	fmt.Printf("bus references: %d (%d fetches)\n", stream.Len(), stats.InstrRefs)
	// Output:
	// output: "hi"
	// bus references: 9 (6 fetches)
}

// ExampleDisassemble renders a machine word back to assembly.
func ExampleDisassemble() {
	// addiu $sp, $sp, -16
	fmt.Println(mips.Disassemble(0x00400000, 0x27BDFFF0))
	// Output:
	// addiu $sp, $sp, -16
}
