package mips

import (
	"strings"
	"testing"
)

func TestAssembleBasicRTypes(t *testing.T) {
	p, err := Assemble(`
        .text
main:   add  $t0, $t1, $t2
        subu $s0, $s1, $s2
        and  $a0, $a1, $a2
        sll  $t0, $t1, 4
        srav $t0, $t1, $t2
        jr   $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	words := p.Segments[0].Bytes
	get := func(i int) uint32 {
		return uint32(words[i*4])<<24 | uint32(words[i*4+1])<<16 | uint32(words[i*4+2])<<8 | uint32(words[i*4+3])
	}
	// add $t0,$t1,$t2: rs=9 rt=10 rd=8 fn=0x20
	if w := get(0); w != 9<<21|10<<16|8<<11|0x20 {
		t.Errorf("add encoded %#08x", w)
	}
	// sll $t0,$t1,4: rt=9 rd=8 sh=4 fn=0
	if w := get(3); w != 9<<16|8<<11|4<<6 {
		t.Errorf("sll encoded %#08x", w)
	}
	if w := get(5); w != 31<<21|0x08 {
		t.Errorf("jr encoded %#08x", w)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	p, err := Assemble(`
        .text
main:   beq $t0, $t1, done
        nop
done:   nop
`)
	if err != nil {
		t.Fatal(err)
	}
	w := uint32(p.Segments[0].Bytes[0])<<24 | uint32(p.Segments[0].Bytes[1])<<16 |
		uint32(p.Segments[0].Bytes[2])<<8 | uint32(p.Segments[0].Bytes[3])
	// Offset from pc+4 (=main+4) to done (=main+8) is 1 word.
	if imm(w) != 1 {
		t.Errorf("branch offset = %d, want 1", imm(w))
	}
	if p.Symbols["done"] != DefaultTextBase+8 {
		t.Errorf("done = %#x", p.Symbols["done"])
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	p, err := Assemble(`
        .data
vals:   .word 1, 2, 0x10
half:   .half 0xBEEF
bytes:  .byte 1, 2, 3
        .align 2
str:    .asciiz "hi"
buf:    .space 8
end:    .word 0xDEADBEEF
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("segments: %d", len(p.Segments))
	}
	seg := p.Segments[0]
	if seg.Base != DefaultDataBase {
		t.Errorf("data base = %#x", seg.Base)
	}
	if p.Symbols["vals"] != DefaultDataBase || p.Symbols["half"] != DefaultDataBase+12 {
		t.Errorf("symbols: %#x %#x", p.Symbols["vals"], p.Symbols["half"])
	}
	// .align 2 pads 14+3=17 bytes to 20.
	if p.Symbols["str"] != DefaultDataBase+20 {
		t.Errorf("str = %#x", p.Symbols["str"])
	}
	if p.Symbols["buf"] != DefaultDataBase+23 {
		t.Errorf("buf = %#x", p.Symbols["buf"])
	}
	if seg.Bytes[0] != 0 || seg.Bytes[3] != 1 {
		t.Errorf("first word bytes: %v", seg.Bytes[:4])
	}
	if string(seg.Bytes[20:23]) != "hi\x00" {
		t.Errorf("asciiz bytes: %q", seg.Bytes[20:23])
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	p, err := Assemble(`
        .text
main:   li  $t0, 7
        li  $t1, 0x12345678
        li  $t2, 0x00010000
        la  $t3, main
        move $t4, $t0
        blt $t0, $t1, main
        nop
`)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes: 1 + 2 + 1 + 2 + 1 + 2 + 1 = 10 words.
	if got := len(p.Segments[0].Bytes); got != 40 {
		t.Errorf("text size = %d bytes, want 40", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus $t0, $t1",           // unknown mnemonic
		"add $t0, $t1",             // wrong arity
		"addi $t0, $t1, 0x20000",   // immediate too large
		"lw $t0, 8",                // bare absolute addresses are fine...
		"main: nop\nmain: nop",     // duplicate label
		".word nope",               // unresolvable
		"sw $t0, 0x20000($t1)",     // offset out of range
		".data\nadd $t0, $t1, $t2", // instruction in .data
	}
	for i, src := range cases {
		_, err := Assemble(".text\n" + src)
		if i == 3 {
			if err != nil {
				t.Errorf("case %d should assemble (absolute small address): %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d (%q) assembled, want error", i, src)
		}
	}
}

func TestAssembleCommentsAndStrings(t *testing.T) {
	p, err := Assemble(`
        .data
s:      .asciiz "a#b"   # the hash inside the string stays
        .text
main:   nop             # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	for _, seg := range p.Segments {
		if seg.Base == DefaultDataBase {
			data = seg.Bytes
		}
	}
	if string(data) != "a#b\x00" {
		t.Errorf("string bytes: %q", data)
	}
}

func TestDisassembleRoundTripish(t *testing.T) {
	src := `
        .text
main:   addiu $sp, $sp, -16
        lw    $t0, 4($sp)
        sw    $t0, 8($sp)
        lui   $t1, 0x1000
        beq   $t0, $t1, main
        j     main
        syscall
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Segments[0].Bytes
	wantPrefixes := []string{"addiu", "lw", "sw", "lui", "beq", "j", "syscall"}
	for i, want := range wantPrefixes {
		w := uint32(b[i*4])<<24 | uint32(b[i*4+1])<<16 | uint32(b[i*4+2])<<8 | uint32(b[i*4+3])
		got := Disassemble(DefaultTextBase+uint32(i*4), w)
		if !strings.HasPrefix(got, want) {
			t.Errorf("word %d: disassembled %q, want prefix %q", i, got, want)
		}
	}
}

func TestProgramSymbolLookup(t *testing.T) {
	p := MustAssemble(".text\nmain: nop\n")
	if _, err := p.Symbol("main"); err != nil {
		t.Error(err)
	}
	if _, err := p.Symbol("nope"); err == nil {
		t.Error("undefined symbol resolved")
	}
}
