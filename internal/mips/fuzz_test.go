package mips

import (
	"strings"
	"testing"
)

// FuzzAssemble checks that the assembler never panics and that whatever
// it accepts can be loaded and stepped without crashing the simulator.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		".text\nmain: nop\n",
		".text\nmain: addiu $sp, $sp, -8\n jr $ra\n",
		".data\nx: .word 1,2,3\n.text\nmain: la $t0, x\n lw $t1, 0($t0)\n break\n",
		".text\nmain: j main\n",
		"main: li $v0, 10\n syscall",
		".text\nloop: beq $t0, $t1, loop\n",
		".asciiz \"unterminated",
		".space -1",
		"lw $t0, 99999999($t1)",
		"label-with-dash: nop",
		".align 31",
		"# just a comment",
		"\tsll $0, $0, 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		c := NewCPU(p)
		for !c.Halted() && c.Cycles() < 200 {
			if err := c.Step(); err != nil {
				return // runtime faults are fine
			}
		}
	})
}

// FuzzDisassemble checks the disassembler is total over the word space.
func FuzzDisassemble(f *testing.F) {
	for _, w := range []uint32{0, 0xFFFFFFFF, 0x27BDFFF0, 0x0C100000, 0xAFBF0014} {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		out := Disassemble(0x00400000, w)
		if strings.TrimSpace(out) == "" {
			t.Errorf("empty disassembly for %#08x", w)
		}
	})
}
