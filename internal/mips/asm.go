package mips

import (
	"fmt"
	"strconv"
	"strings"
)

// Default segment bases, matching the conventional MIPS memory map the
// paper's address streams reflect (text at 0x00400000, data at
// 0x10000000, stack below 0x7FFFF000).
const (
	DefaultTextBase  = 0x00400000
	DefaultDataBase  = 0x10000000
	DefaultStackTop  = 0x7FFFF000
	DefaultStackSize = 0x00010000
)

// Segment-size guards: keep hostile or buggy sources from exhausting
// memory (.space of 4 GiB, .align 31, ...).
const (
	maxSpace    = 16 << 20 // bytes per .space directive
	maxAlignPow = 12       // .align up to 4 KiB boundaries
)

// Assemble translates MIPS assembly source into a Program. The supported
// syntax covers labels, the directives .text/.data/.word/.half/.byte/
// .space/.asciiz/.align/.globl, the MIPS-I integer instruction set, and
// the common pseudo-instructions (li, la, move, nop, b, beqz, bnez, blt,
// bgt, ble, bge, neg, not, mul).
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
		text:    newImage(DefaultTextBase),
		data:    newImage(DefaultDataBase),
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	prog := &Program{Entry: a.entry(), Symbols: a.symbols}
	if len(a.text.bytes) > 0 {
		prog.Segments = append(prog.Segments, Segment{Base: a.text.base, Bytes: a.text.bytes})
	}
	if len(a.data.bytes) > 0 {
		prog.Segments = append(prog.Segments, Segment{Base: a.data.base, Bytes: a.data.bytes})
	}
	return prog, nil
}

// MustAssemble is Assemble panicking on error, for the bundled programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type image struct {
	base  uint32
	bytes []byte
}

func newImage(base uint32) *image { return &image{base: base} }

func (im *image) pc() uint32 { return im.base + uint32(len(im.bytes)) }

func (im *image) emitWord(w uint32) {
	im.bytes = append(im.bytes, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
}

func (im *image) emitHalf(h uint16) {
	im.bytes = append(im.bytes, byte(h>>8), byte(h))
}

func (im *image) alignTo(n int) {
	for len(im.bytes)%n != 0 {
		im.bytes = append(im.bytes, 0)
	}
}

type assembler struct {
	symbols map[string]uint32
	text    *image
	data    *image
}

func (a *assembler) entry() uint32 {
	if e, ok := a.symbols["main"]; ok {
		return e
	}
	return a.text.base
}

// statement is one parsed source line element retained for pass 2.
type statement struct {
	line    int
	label   string
	mnem    string
	ops     []string
	raw     string
	addr    uint32 // filled in pass 1 (for instructions)
	inText  bool
	nwords  int // instruction words this statement expands to
	isInstr bool
}

func (a *assembler) run(src string) error {
	stmts, err := a.parse(src)
	if err != nil {
		return err
	}
	if err := a.pass1(stmts); err != nil {
		return err
	}
	return a.pass2(stmts)
}

func (a *assembler) parse(src string) ([]*statement, error) {
	var stmts []*statement
	for i, line := range strings.Split(src, "\n") {
		lineNo := i + 1
		line = stripComment(line)
		line = strings.TrimSpace(strings.ReplaceAll(line, "\t", " "))
		for line != "" {
			// Peel off any leading labels.
			if idx := strings.IndexByte(line, ':'); idx >= 0 && isLabelName(strings.TrimSpace(line[:idx])) {
				stmts = append(stmts, &statement{line: lineNo, label: strings.TrimSpace(line[:idx])})
				line = strings.TrimSpace(line[idx+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(line, " ")
		mnem = strings.ToLower(strings.TrimSpace(mnem))
		st := &statement{line: lineNo, mnem: mnem, raw: line}
		if rest = strings.TrimSpace(rest); rest != "" {
			if mnem == ".asciiz" || mnem == ".ascii" {
				st.ops = []string{rest}
			} else {
				for _, op := range strings.Split(rest, ",") {
					st.ops = append(st.ops, strings.TrimSpace(op))
				}
			}
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// stripComment removes a '#' comment, ignoring '#' inside string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++ // skip the escaped character
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func isLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == '.':
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// instrSize returns how many machine words a (pseudo-)instruction expands
// to; needed for label resolution in pass 1.
func (a *assembler) instrSize(st *statement) (int, error) {
	switch st.mnem {
	case "li":
		if len(st.ops) != 2 {
			return 0, a.errf(st, "li needs 2 operands")
		}
		v, err := parseImm32(st.ops[1])
		if err != nil {
			return 0, a.errf(st, "li immediate: %v", err)
		}
		if int64(int16(v)) == int64(int32(v)) || v&0xFFFF0000 == 0 {
			return 1, nil
		}
		if v&0xFFFF == 0 {
			return 1, nil // lui alone
		}
		return 2, nil
	case "la", "mul", "rem", "blt", "bgt", "ble", "bge", "bltu", "bgeu":
		return 2, nil
	default:
		return 1, nil
	}
}

func (a *assembler) pass1(stmts []*statement) error {
	cur := a.text
	inText := true
	for _, st := range stmts {
		if st.label != "" {
			if _, dup := a.symbols[st.label]; dup {
				return fmt.Errorf("line %d: duplicate label %q", st.line, st.label)
			}
			a.symbols[st.label] = cur.pc()
			continue
		}
		if strings.HasPrefix(st.mnem, ".") {
			var err error
			cur, inText, err = a.directiveSize(st, cur, inText)
			if err != nil {
				return err
			}
			continue
		}
		if !inText {
			return a.errf(st, "instruction outside .text")
		}
		n, err := a.instrSize(st)
		if err != nil {
			return err
		}
		st.addr = cur.pc()
		st.inText = true
		st.isInstr = true
		st.nwords = n
		for i := 0; i < n; i++ {
			cur.emitWord(0) // placeholder, sized
		}
	}
	// Reset images for pass 2 re-emission.
	a.text.bytes = a.text.bytes[:0]
	a.data.bytes = a.data.bytes[:0]
	return nil
}

func (a *assembler) directiveSize(st *statement, cur *image, inText bool) (*image, bool, error) {
	switch st.mnem {
	case ".text":
		if len(st.ops) == 1 {
			v, err := parseImm32(st.ops[0])
			if err != nil {
				return cur, inText, a.errf(st, ".text base: %v", err)
			}
			if len(a.text.bytes) > 0 {
				return cur, inText, a.errf(st, ".text base change after emission")
			}
			a.text.base = v
		}
		return a.text, true, nil
	case ".data":
		if len(st.ops) == 1 {
			v, err := parseImm32(st.ops[0])
			if err != nil {
				return cur, inText, a.errf(st, ".data base: %v", err)
			}
			if len(a.data.bytes) > 0 {
				return cur, inText, a.errf(st, ".data base change after emission")
			}
			a.data.base = v
		}
		return a.data, false, nil
	case ".globl", ".global", ".ent", ".end":
		return cur, inText, nil
	case ".word":
		for range st.ops {
			cur.emitWord(0)
		}
		return cur, inText, nil
	case ".half":
		for range st.ops {
			cur.emitHalf(0)
		}
		return cur, inText, nil
	case ".byte":
		for range st.ops {
			cur.bytes = append(cur.bytes, 0)
		}
		return cur, inText, nil
	case ".space":
		if len(st.ops) != 1 {
			return cur, inText, a.errf(st, ".space needs a size")
		}
		n, err := parseImm32(st.ops[0])
		if err != nil {
			return cur, inText, a.errf(st, ".space size: %v", err)
		}
		if n > maxSpace {
			return cur, inText, a.errf(st, ".space size %d exceeds the %d-byte segment limit", n, maxSpace)
		}
		cur.bytes = append(cur.bytes, make([]byte, n)...)
		return cur, inText, nil
	case ".align":
		if len(st.ops) != 1 {
			return cur, inText, a.errf(st, ".align needs a power")
		}
		p, err := parseImm32(st.ops[0])
		if err != nil || p > maxAlignPow {
			return cur, inText, a.errf(st, "bad .align power %q (max %d)", st.ops[0], maxAlignPow)
		}
		cur.alignTo(1 << p)
		return cur, inText, nil
	case ".asciiz", ".ascii":
		s, err := parseString(st.ops[0])
		if err != nil {
			return cur, inText, a.errf(st, "%v", err)
		}
		cur.bytes = append(cur.bytes, s...)
		if st.mnem == ".asciiz" {
			cur.bytes = append(cur.bytes, 0)
		}
		return cur, inText, nil
	default:
		return cur, inText, a.errf(st, "unknown directive %s", st.mnem)
	}
}

func (a *assembler) pass2(stmts []*statement) error {
	cur := a.text
	inText := true
	for _, st := range stmts {
		if st.label != "" {
			continue
		}
		if strings.HasPrefix(st.mnem, ".") {
			var err error
			cur, inText, err = a.directiveEmit(st, cur, inText)
			if err != nil {
				return err
			}
			continue
		}
		words, err := a.encode(st)
		if err != nil {
			return err
		}
		if len(words) != st.nwords {
			return a.errf(st, "internal: sized %d words, emitted %d", st.nwords, len(words))
		}
		for _, w := range words {
			cur.emitWord(w)
		}
	}
	return nil
}

func (a *assembler) directiveEmit(st *statement, cur *image, inText bool) (*image, bool, error) {
	switch st.mnem {
	case ".text":
		return a.text, true, nil
	case ".data":
		return a.data, false, nil
	case ".globl", ".global", ".ent", ".end":
		return cur, inText, nil
	case ".word":
		for _, op := range st.ops {
			v, err := a.value(op)
			if err != nil {
				return cur, inText, a.errf(st, ".word: %v", err)
			}
			cur.emitWord(v)
		}
		return cur, inText, nil
	case ".half":
		for _, op := range st.ops {
			v, err := a.value(op)
			if err != nil {
				return cur, inText, a.errf(st, ".half: %v", err)
			}
			cur.emitHalf(uint16(v))
		}
		return cur, inText, nil
	case ".byte":
		for _, op := range st.ops {
			v, err := a.value(op)
			if err != nil {
				return cur, inText, a.errf(st, ".byte: %v", err)
			}
			cur.bytes = append(cur.bytes, byte(v))
		}
		return cur, inText, nil
	case ".space":
		n, _ := parseImm32(st.ops[0]) // validated in pass 1
		cur.bytes = append(cur.bytes, make([]byte, n)...)
		return cur, inText, nil
	case ".align":
		p, _ := parseImm32(st.ops[0])
		cur.alignTo(1 << p)
		return cur, inText, nil
	case ".asciiz", ".ascii":
		s, _ := parseString(st.ops[0])
		cur.bytes = append(cur.bytes, s...)
		if st.mnem == ".asciiz" {
			cur.bytes = append(cur.bytes, 0)
		}
		return cur, inText, nil
	}
	return cur, inText, a.errf(st, "unknown directive %s", st.mnem)
}

func (a *assembler) errf(st *statement, format string, args ...interface{}) error {
	return fmt.Errorf("line %d (%s): %s", st.line, st.raw, fmt.Sprintf(format, args...))
}

// value resolves an operand that may be a numeric literal or a label.
func (a *assembler) value(op string) (uint32, error) {
	if v, err := parseImm32(op); err == nil {
		return v, nil
	}
	if v, ok := a.symbols[op]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("cannot resolve %q", op)
}

func parseImm32(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return uint32(body[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, err
	}
	if neg {
		return uint32(-int32(uint32(v))), nil
	}
	return uint32(v), nil
}

func parseString(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	unq, err := strconv.Unquote(s)
	if err != nil {
		return nil, fmt.Errorf("bad string literal %s: %v", s, err)
	}
	return []byte(unq), nil
}
