// Package hw synthesizes gate-level implementations of the paper's
// encoders and decoders (Section 4.1) from the code equations, using the
// building blocks of internal/netlist: registers, a ripple incrementer, an
// equality comparator, and — for the bus-invert section — a Hamming
// distance evaluator (XOR bank + population-count tree) followed by a
// majority voter.
//
// The paper's three power-analysis codecs (Binary — buffers only — T0,
// and dual T0_BI) live in this file; more.go extends the family to Gray,
// BusInvert, T0_BI, DualT0 and IncXor. Every netlist is functionally
// verified, bit for bit, against the reference software codecs in the
// package tests, both as generated and after netlist.Optimize.
package hw

import (
	"fmt"

	"busenc/internal/netlist"
	"busenc/internal/trace"
)

// Codec bundles the encoder and decoder netlists of one code.
type Codec struct {
	Name  string
	Width int // payload width N
	// Redundant is the number of extra bus lines (0, 1 or 2).
	Redundant int
	Enc, Dec  *netlist.Netlist
	// UsesSel reports whether the codec consumes the SEL signal.
	UsesSel bool
	// ctrlOuts names the encoder's redundant-line outputs, in bus order
	// (bit Width, Width+1, ...).
	ctrlOuts []string
}

// BusWidth is the number of driven bus lines.
func (c Codec) BusWidth() int { return c.Width + c.Redundant }

// Binary returns the binary "codec": buffers on every line at both ends,
// exactly the structure the paper assumes for the reference case.
func Binary(width int) Codec {
	enc := netlist.New("binary-enc")
	in := enc.InputBus("b", width)
	out := make([]netlist.NetID, width)
	for i, id := range in {
		out[i] = enc.Buf(id)
	}
	enc.OutputBus("B", out)

	dec := netlist.New("binary-dec")
	din := dec.InputBus("B", width)
	dout := make([]netlist.NetID, width)
	for i, id := range din {
		dout[i] = dec.Buf(id)
	}
	dec.OutputBus("b", dout)
	return Codec{Name: "binary", Width: width, Enc: enc, Dec: dec}
}

// T0 returns the T0 codec hardware: the encoder holds the previous address
// in a register, increments it by the stride, compares with the incoming
// address to generate INC, and freezes the output register while INC is
// high; the decoder regenerates frozen addresses with its own incrementer.
func T0(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	enc := netlist.New("t0-enc")
	b := enc.InputBus("b", width)
	// Register holding b(t-1).
	prevAddr, connectPrevAddr := enc.RegBankFeedback(width)
	connectPrevAddr(b)
	// valid goes high one cycle after reset so the first address is
	// always transmitted in binary.
	valid, connectValid := enc.DFFFeedback()
	connectValid(enc.Const1())
	expected := enc.PrefixIncrementer(prevAddr, strideLog)
	inc := enc.And(enc.Equal(expected, b), valid)
	// Output register frozen while INC is high.
	prevBus, connectPrevBus := enc.RegBankFeedback(width)
	outB := enc.MuxBank(b, prevBus, inc)
	connectPrevBus(outB)
	enc.OutputBus("B", outB)
	enc.Output("INC", inc)

	dec := netlist.New("t0-dec")
	dB := dec.InputBus("B", width)
	dInc := dec.Input("INC")
	prevDec, connectPrevDec := dec.RegBankFeedback(width)
	regen := dec.PrefixIncrementer(prevDec, strideLog)
	addr := dec.MuxBank(dB, regen, dInc)
	connectPrevDec(addr)
	dec.OutputBus("b", addr)
	return Codec{Name: "t0", Width: width, Redundant: 1, Enc: enc, Dec: dec, ctrlOuts: []string{"INC"}}
}

// DualT0BI returns the dual T0_BI codec hardware (eq. 11/12): a T0 section
// keyed to SEL generating the freeze condition, a bus-invert section
// (Hamming distance evaluator over the previous encoded word and the
// incoming address, then a majority voter) for SEL=0 cycles, and the
// output multiplexor controlled by INCV = INC + INV.
func DualT0BI(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	enc := netlist.New("dualt0bi-enc")
	b := enc.InputBus("b", width)
	sel := enc.Input("SEL")

	// T0 section: instruction-address reference register, updated only
	// when SEL is asserted.
	ref, connectRef := enc.RegBankFeedback(width)
	connectRef(enc.MuxBank(ref, b, sel))
	valid, connectValid := enc.DFFFeedback()
	connectValid(enc.Or(valid, sel))
	expected := enc.PrefixIncrementer(ref, strideLog)
	incCond := enc.And(enc.And(sel, valid), enc.Equal(expected, b))

	// Bus-invert section: Hamming distance between the previous encoded
	// word (payload plus INCV) and the incoming address extended with 0.
	prevWord, connectPrevWord := enc.RegBankFeedback(width + 1)
	hamBits := append(enc.XorBank(prevWord[:width], b), prevWord[width])
	count := enc.PopCount(hamBits)
	maj := enc.GreaterThanConst(count, uint64(width/2))
	invCond := enc.And(enc.Not(sel), maj)

	incv := enc.Or(incCond, invCond)
	inverted := enc.InvertBank(b, invCond)
	outB := enc.MuxBank(inverted, prevWord[:width], incCond)
	connectPrevWord(append(append([]netlist.NetID{}, outB...), incv))
	enc.OutputBus("B", outB)
	enc.Output("INCV", incv)

	dec := netlist.New("dualt0bi-dec")
	dB := dec.InputBus("B", width)
	dIncv := dec.Input("INCV")
	dSel := dec.Input("SEL")
	refD, connectRefD := dec.RegBankFeedback(width)
	regen := dec.PrefixIncrementer(refD, strideLog)
	t0case := dec.And(dIncv, dSel)
	bicase := dec.And(dIncv, dec.Not(dSel))
	payload := dec.InvertBank(dB, bicase)
	addr := dec.MuxBank(payload, regen, t0case)
	connectRefD(dec.MuxBank(refD, addr, dSel))
	dec.OutputBus("b", addr)
	return Codec{Name: "dualt0bi", Width: width, Redundant: 1, Enc: enc, Dec: dec, UsesSel: true, ctrlOuts: []string{"INCV"}}
}

// EncInputs formats one stream entry as the encoder netlist's input vector
// (address bits LSB first, then SEL for codecs that use it).
func (c Codec) EncInputs(e trace.Entry) []bool {
	n := c.Width
	if c.UsesSel {
		n++
	}
	in := make([]bool, n)
	for i := 0; i < c.Width; i++ {
		in[i] = e.Addr>>uint(i)&1 == 1
	}
	if c.UsesSel {
		in[c.Width] = e.Sel()
	}
	return in
}

// DecInputs formats an encoded word (payload + redundant lines) and SEL as
// the decoder netlist's input vector.
func (c Codec) DecInputs(word uint64, sel bool) []bool {
	n := c.Width + c.Redundant
	if c.UsesSel {
		n++
	}
	in := make([]bool, n)
	for i := 0; i < c.Width+c.Redundant; i++ {
		in[i] = word>>uint(i)&1 == 1
	}
	if c.UsesSel {
		in[c.Width+c.Redundant] = sel
	}
	return in
}

// EncodedWord reads the encoder simulator's output as a bus word: payload
// in the low bits, redundant lines above in declaration order.
func (c Codec) EncodedWord(sim *netlist.Simulator) uint64 {
	w := sim.OutputWord("B", c.Width)
	for i, name := range c.ctrlOuts {
		if id, ok := c.Enc.OutputNet(name); ok && sim.Value(id) {
			w |= 1 << uint(c.Width+i)
		}
	}
	return w
}
