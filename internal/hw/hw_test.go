package hw

import (
	"math/rand"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/netlist"
	"busenc/internal/trace"
)

// mixedStream builds an adversarial muxed stream: sequential fetch runs,
// jumps, and scattered data accesses.
func mixedStream(width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	s := trace.New("mix", width)
	addr := uint64(0x40)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			addr += 4
			s.Append(addr, trace.Instr)
		case 2:
			addr = rng.Uint64()
			s.Append(addr, trace.Instr)
		default:
			s.Append(rng.Uint64(), trace.DataRead)
		}
	}
	return s
}

// checkEquivalence drives the stream through the hardware encoder and
// decoder and the reference software codec, comparing every word and every
// decoded address.
func checkEquivalence(t *testing.T, hwCodec Codec, swCodec codec.Codec, s *trace.Stream) {
	t.Helper()
	encSim, err := netlist.NewSimulator(hwCodec.Enc)
	if err != nil {
		t.Fatal(err)
	}
	decSim, err := netlist.NewSimulator(hwCodec.Dec)
	if err != nil {
		t.Fatal(err)
	}
	swEnc := swCodec.NewEncoder()
	mask := uint64(1)<<uint(hwCodec.Width) - 1
	for i, e := range s.Entries {
		encSim.Step(hwCodec.EncInputs(e))
		hwWord := hwCodec.EncodedWord(encSim)
		swWord := swEnc.Encode(codec.SymbolOf(e))
		if hwWord != swWord {
			t.Fatalf("%s: entry %d (%+v): hardware word %#x, software word %#x", hwCodec.Name, i, e, hwWord, swWord)
		}
		decSim.Step(hwCodec.DecInputs(hwWord, e.Sel()))
		if got := decSim.OutputWord("b", hwCodec.Width); got != e.Addr&mask {
			t.Fatalf("%s: entry %d: hardware decoded %#x, want %#x", hwCodec.Name, i, got, e.Addr&mask)
		}
	}
}

func TestBinaryHardwareEquivalence(t *testing.T) {
	const w = 16
	checkEquivalence(t, Binary(w), codec.MustNew("binary", w, codec.Options{}), mixedStream(w, 2000, 1))
}

func TestT0HardwareEquivalence(t *testing.T) {
	const w = 16
	checkEquivalence(t, T0(w, 2), codec.MustNew("t0", w, codec.Options{Stride: 4}), mixedStream(w, 2000, 2))
}

func TestT0HardwareEquivalenceStride1(t *testing.T) {
	const w = 12
	checkEquivalence(t, T0(w, 0), codec.MustNew("t0", w, codec.Options{Stride: 1}), mixedStream(w, 2000, 3))
}

func TestDualT0BIHardwareEquivalence(t *testing.T) {
	const w = 16
	checkEquivalence(t, DualT0BI(w, 2), codec.MustNew("dualt0bi", w, codec.Options{Stride: 4}), mixedStream(w, 3000, 4))
}

func TestDualT0BIHardwareEquivalenceOddWidth(t *testing.T) {
	// Odd payload width exercises the majority threshold rounding.
	const w = 9
	checkEquivalence(t, DualT0BI(w, 0), codec.MustNew("dualt0bi", w, codec.Options{Stride: 1}), mixedStream(w, 3000, 5))
}

func TestT0HardwareSequentialFreeze(t *testing.T) {
	// On a pure sequential stream the encoder's payload outputs must stop
	// toggling entirely after the first address.
	const w = 16
	c := T0(w, 2)
	sim, err := netlist.NewSimulator(c.Enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sim.Step(c.EncInputs(trace.Entry{Addr: 0x100 + uint64(i)*4, Kind: trace.Instr}))
	}
	act := sim.Activity()
	// All payload outputs quiet: the only toggling output line is INC
	// during warm-up.
	total := 0.0
	for _, out := range c.Enc.Outputs() {
		total += act.NetAlpha[out]
	}
	if total > 0.05 {
		t.Errorf("frozen encoder outputs still toggling: total alpha %v", total)
	}
}

func TestHardwareComplexityOrdering(t *testing.T) {
	// The paper reports the dual T0_BI encoder to be roughly an order of
	// magnitude more power-hungry than the T0 encoder at small loads; at
	// minimum its gate count and area must dominate, and binary must be
	// negligible.
	const w = 32
	lib := netlist.DefaultLibrary()
	bin := Binary(w)
	t0 := T0(w, 2)
	dbi := DualT0BI(w, 2)
	if !(lib.Area(bin.Enc) < lib.Area(t0.Enc) && lib.Area(t0.Enc) < lib.Area(dbi.Enc)) {
		t.Errorf("encoder areas: binary %.1f, t0 %.1f, dualt0bi %.1f — expected strict ordering",
			lib.Area(bin.Enc), lib.Area(t0.Enc), lib.Area(dbi.Enc))
	}
	// Decoders of T0 and dual T0_BI are architecturally similar; the
	// paper calls their power comparable. Allow a factor of two.
	at0, adbi := lib.Area(t0.Dec), lib.Area(dbi.Dec)
	if adbi > 2*at0 || at0 > 2*adbi {
		t.Errorf("decoder areas diverge: t0 %.1f vs dualt0bi %.1f", at0, adbi)
	}
}

func TestEncoderPowerMeasurement(t *testing.T) {
	// Simulation-based encoder power on a muxed stream: dual T0_BI must
	// cost more than T0, which must cost more than binary, at zero load.
	const w = 32
	lib := netlist.DefaultLibrary()
	s := mixedStream(w, 3000, 6)
	measure := func(c Codec) float64 {
		sim, err := netlist.NewSimulator(c.Enc)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range s.Entries {
			sim.Step(c.EncInputs(e))
		}
		return lib.Power(c.Enc, sim.Activity(), 100e6, 0)
	}
	pBin := measure(Binary(w))
	pT0 := measure(T0(w, 2))
	pDbi := measure(DualT0BI(w, 2))
	if !(pBin < pT0 && pT0 < pDbi) {
		t.Errorf("encoder powers: binary %.3g, t0 %.3g, dualt0bi %.3g — expected strict ordering", pBin, pT0, pDbi)
	}
	// The paper reports ~10x at small loads for its implementation; our
	// library yields a smaller but still clear gap (~2x). Assert the
	// qualitative dominance.
	if pDbi < 1.5*pT0 {
		t.Errorf("dual T0_BI encoder (%.3g) should dominate T0 encoder (%.3g) clearly", pDbi, pT0)
	}
}

func TestProbabilisticEncoderEstimateTracksSimulation(t *testing.T) {
	const w = 16
	lib := netlist.DefaultLibrary()
	c := T0(w, 2)
	s := mixedStream(w, 5000, 7)
	sim, err := netlist.NewSimulator(c.Enc)
	if err != nil {
		t.Fatal(err)
	}
	// Measure per-input statistics while simulating.
	nIn := len(c.Enc.Inputs())
	ones := make([]int64, nIn)
	toggles := make([]int64, nIn)
	var prev []bool
	for _, e := range s.Entries {
		in := c.EncInputs(e)
		for i, v := range in {
			if v {
				ones[i]++
			}
			if prev != nil && v != prev[i] {
				toggles[i]++
			}
		}
		prev = in
		sim.Step(in)
	}
	cycles := float64(len(s.Entries))
	stats := make([]netlist.ProbIn, nIn)
	for i := range stats {
		stats[i] = netlist.ProbIn{P: float64(ones[i]) / cycles, D: float64(toggles[i]) / (cycles - 1)}
	}
	inMap, err := netlist.MeasuredInputs(c.Enc, stats)
	if err != nil {
		t.Fatal(err)
	}
	est, err := netlist.Propagate(c.Enc, inMap)
	if err != nil {
		t.Fatal(err)
	}
	pSim := lib.Power(c.Enc, sim.Activity(), 100e6, 0)
	pEst := lib.Power(c.Enc, est, 100e6, 0)
	ratio := pEst / pSim
	// Probabilistic estimation ignores temporal/spatial correlation of
	// address bits, so allow a generous band — the point is order of
	// magnitude agreement, as for the commercial tool.
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("probabilistic %.3g vs simulated %.3g (ratio %.2f)", pEst, pSim, ratio)
	}
}
