package hw

import (
	"strings"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/netlist"
)

func TestGrayHardwareEquivalence(t *testing.T) {
	for _, strideLog := range []int{0, 2} {
		stride := uint64(1) << uint(strideLog)
		checkEquivalence(t, Gray(16, strideLog),
			codec.MustNew("gray", 16, codec.Options{Stride: stride}),
			mixedStream(16, 2000, 10+int64(strideLog)))
	}
}

func TestBusInvertHardwareEquivalence(t *testing.T) {
	checkEquivalence(t, BusInvert(16),
		codec.MustNew("businvert", 16, codec.Options{}),
		mixedStream(16, 3000, 11))
}

func TestBusInvertHardwareEquivalenceOddWidth(t *testing.T) {
	checkEquivalence(t, BusInvert(11),
		codec.MustNew("businvert", 11, codec.Options{}),
		mixedStream(11, 3000, 12))
}

func TestT0BIHardwareEquivalence(t *testing.T) {
	checkEquivalence(t, T0BI(16, 2),
		codec.MustNew("t0bi", 16, codec.Options{Stride: 4}),
		mixedStream(16, 3000, 13))
}

func TestT0BIHardwareEquivalenceOddWidth(t *testing.T) {
	checkEquivalence(t, T0BI(9, 0),
		codec.MustNew("t0bi", 9, codec.Options{Stride: 1}),
		mixedStream(9, 3000, 14))
}

func TestDualT0HardwareEquivalence(t *testing.T) {
	checkEquivalence(t, DualT0(16, 2),
		codec.MustNew("dualt0", 16, codec.Options{Stride: 4}),
		mixedStream(16, 3000, 15))
}

func TestIncXorHardwareEquivalence(t *testing.T) {
	checkEquivalence(t, IncXor(16, 2),
		codec.MustNew("incxor", 16, codec.Options{Stride: 4}),
		mixedStream(16, 3000, 16))
}

func TestGrayHardwareIsCombinational(t *testing.T) {
	c := Gray(32, 2)
	if c.Enc.CountCells(netlist.KindDFF) != 0 || c.Dec.CountCells(netlist.KindDFF) != 0 {
		t.Error("gray codec must be stateless")
	}
}

func TestBusInvertDecoderIsStateless(t *testing.T) {
	c := BusInvert(32)
	if c.Dec.CountCells(netlist.KindDFF) != 0 {
		t.Error("bus-invert decoder must be stateless")
	}
}

func TestAllHardwareCodecsConstructAtFullWidth(t *testing.T) {
	// The paper's bus is 32 bits; every generator must levelize cleanly
	// (no combinational cycles) at that width.
	codecs := []Codec{
		Binary(32), Gray(32, 2), BusInvert(32), T0(32, 2),
		T0BI(32, 2), DualT0(32, 2), DualT0BI(32, 2), IncXor(32, 2),
	}
	for _, c := range codecs {
		if _, err := netlist.NewSimulator(c.Enc); err != nil {
			t.Errorf("%s encoder: %v", c.Name, err)
		}
		if _, err := netlist.NewSimulator(c.Dec); err != nil {
			t.Errorf("%s decoder: %v", c.Name, err)
		}
		if c.BusWidth() != c.Width+c.Redundant {
			t.Errorf("%s: bus width accounting wrong", c.Name)
		}
	}
}

func TestStrideLogValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Gray(8, 8) },
		func() { T0BI(8, -1) },
		func() { DualT0(8, 9) },
		func() { IncXor(8, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range strideLog accepted")
				}
			}()
			f()
		}()
	}
}

func TestAllHardwareCodecsEmitVerilog(t *testing.T) {
	codecs := []Codec{
		Binary(16), Gray(16, 2), BusInvert(16), T0(16, 2),
		T0BI(16, 2), DualT0(16, 2), DualT0BI(16, 2), IncXor(16, 2),
	}
	for _, c := range codecs {
		for _, n := range []*netlist.Netlist{c.Enc, c.Dec} {
			var sb strings.Builder
			if err := netlist.WriteVerilog(&sb, n); err != nil {
				t.Fatalf("%s/%s: %v", c.Name, n.Name, err)
			}
			v := sb.String()
			if !strings.Contains(v, "module ") || !strings.Contains(v, "endmodule") {
				t.Errorf("%s/%s: malformed Verilog", c.Name, n.Name)
			}
			// Sequential codecs must ship the flip-flop model.
			if n.CountCells(netlist.KindDFF) > 0 && !strings.Contains(v, "module busenc_dff") {
				t.Errorf("%s/%s: missing flip-flop model", c.Name, n.Name)
			}
		}
	}
}

func TestCriticalPathThroughBusInvertSection(t *testing.T) {
	// The paper reports the dual T0_BI encoder's critical path running
	// through the bus-invert section and the output mux. Under our delay
	// model the dual encoder must be slower than the plain T0 encoder,
	// and its critical path must traverse the popcount tree (XOR-heavy).
	lib := netlist.DefaultLibrary()
	t0Delay, _, err := lib.CriticalPath(T0(32, 2).Enc)
	if err != nil {
		t.Fatal(err)
	}
	dbiDelay, path, err := lib.CriticalPath(DualT0BI(32, 2).Enc)
	if err != nil {
		t.Fatal(err)
	}
	if dbiDelay <= t0Delay {
		t.Errorf("dual T0_BI encoder critical path %.2fns not beyond T0's %.2fns", dbiDelay*1e9, t0Delay*1e9)
	}
	// A 0.35um-class implementation lands in single-digit nanoseconds
	// (the paper: 5.36 ns).
	if dbiDelay < 1e-9 || dbiDelay > 20e-9 {
		t.Errorf("dual T0_BI critical path %.2fns implausible", dbiDelay*1e9)
	}
	xors := 0
	for _, st := range path {
		if st.Kind == netlist.KindXor2 || st.Kind == netlist.KindXnor2 {
			xors++
		}
	}
	if xors < 3 {
		t.Errorf("critical path has only %d XOR stages; expected it through the Hamming tree (path %+v)", xors, path)
	}
}

func TestOptimizedCodecsStayEquivalent(t *testing.T) {
	// Run the netlist optimizer over every hardware codec and re-verify
	// bit-exact equivalence against the software reference.
	mk := func(c Codec) Codec {
		encOpt, err := netlist.Optimize(c.Enc)
		if err != nil {
			t.Fatalf("%s enc: %v", c.Name, err)
		}
		decOpt, err := netlist.Optimize(c.Dec)
		if err != nil {
			t.Fatalf("%s dec: %v", c.Name, err)
		}
		if encOpt.NumCells() > c.Enc.NumCells() || decOpt.NumCells() > c.Dec.NumCells() {
			t.Errorf("%s: optimization grew the netlist (%d->%d enc, %d->%d dec)",
				c.Name, c.Enc.NumCells(), encOpt.NumCells(), c.Dec.NumCells(), decOpt.NumCells())
		}
		c.Enc, c.Dec = encOpt, decOpt
		return c
	}
	checkEquivalence(t, mk(T0(16, 2)),
		codec.MustNew("t0", 16, codec.Options{Stride: 4}), mixedStream(16, 2500, 30))
	checkEquivalence(t, mk(DualT0BI(16, 2)),
		codec.MustNew("dualt0bi", 16, codec.Options{Stride: 4}), mixedStream(16, 2500, 31))
	checkEquivalence(t, mk(T0BI(11, 0)),
		codec.MustNew("t0bi", 11, codec.Options{Stride: 1}), mixedStream(11, 2500, 32))
	checkEquivalence(t, mk(BusInvert(16)),
		codec.MustNew("businvert", 16, codec.Options{}), mixedStream(16, 2500, 33))
	checkEquivalence(t, mk(IncXor(16, 2)),
		codec.MustNew("incxor", 16, codec.Options{Stride: 4}), mixedStream(16, 2500, 34))
}
