package hw

import (
	"fmt"

	"busenc/internal/netlist"
)

// Additional hardware codecs beyond the three the paper evaluates in
// Section 4 — the rest of the code family, so any codec in this
// repository can be synthesized, power-analyzed and exported (EXTENSION).

// Gray returns the stride-aware Gray codec hardware. The encoder is a
// rank of XOR gates (out[i] = b[i] ^ b[i+1] above the stride bits); the
// decoder is the prefix-XOR chain. Both are purely combinational.
func Gray(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	enc := netlist.New("gray-enc")
	b := enc.InputBus("b", width)
	out := make([]netlist.NetID, width)
	for i := 0; i < strideLog; i++ {
		out[i] = enc.Buf(b[i])
	}
	for i := strideLog; i < width-1; i++ {
		out[i] = enc.Xor(b[i], b[i+1])
	}
	out[width-1] = enc.Buf(b[width-1])
	enc.OutputBus("B", out)

	dec := netlist.New("gray-dec")
	g := dec.InputBus("B", width)
	d := make([]netlist.NetID, width)
	d[width-1] = dec.Buf(g[width-1])
	for i := width - 2; i >= strideLog; i-- {
		d[i] = dec.Xor(g[i], d[i+1])
	}
	for i := 0; i < strideLog; i++ {
		d[i] = dec.Buf(g[i])
	}
	dec.OutputBus("b", d)
	return Codec{Name: "gray", Width: width, Enc: enc, Dec: dec}
}

// BusInvert returns the classic bus-invert codec hardware: a Hamming
// distance evaluator against the previous encoded word (including the INV
// line), a majority voter, and the conditional inversion bank. The
// decoder is a stateless XOR bank keyed on INV.
func BusInvert(width int) Codec {
	enc := netlist.New("businvert-enc")
	b := enc.InputBus("b", width)
	prevWord, connectPrevWord := enc.RegBankFeedback(width + 1)
	hamBits := append(enc.XorBank(prevWord[:width], b), prevWord[width])
	count := enc.PopCount(hamBits)
	inv := enc.GreaterThanConst(count, uint64(width/2))
	outB := enc.InvertBank(b, inv)
	connectPrevWord(append(append([]netlist.NetID{}, outB...), inv))
	enc.OutputBus("B", outB)
	enc.Output("INV", inv)

	dec := netlist.New("businvert-dec")
	dB := dec.InputBus("B", width)
	dInv := dec.Input("INV")
	dec.OutputBus("b", dec.InvertBank(dB, dInv))
	return Codec{Name: "businvert", Width: width, Redundant: 1, Enc: enc, Dec: dec, ctrlOuts: []string{"INV"}}
}

// T0BI returns the T0_BI codec hardware (paper eq. 6/7): a T0 section over
// the raw address register plus a bus-invert section with threshold
// (N+2)/2 over the previous encoded word including both redundant lines.
func T0BI(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	enc := netlist.New("t0bi-enc")
	b := enc.InputBus("b", width)
	prevAddr, connectPrevAddr := enc.RegBankFeedback(width)
	connectPrevAddr(b)
	valid, connectValid := enc.DFFFeedback()
	connectValid(enc.Const1())
	expected := enc.PrefixIncrementer(prevAddr, strideLog)
	incCond := enc.And(enc.Equal(expected, b), valid)

	prevWord, connectPrevWord := enc.RegBankFeedback(width + 2)
	hamBits := append(enc.XorBank(prevWord[:width], b), prevWord[width], prevWord[width+1])
	count := enc.PopCount(hamBits)
	maj := enc.GreaterThanConst(count, uint64((width+2)/2))
	invCond := enc.And(enc.Not(incCond), maj)

	inverted := enc.InvertBank(b, invCond)
	outB := enc.MuxBank(inverted, prevWord[:width], incCond)
	connectPrevWord(append(append([]netlist.NetID{}, outB...), incCond, invCond))
	enc.OutputBus("B", outB)
	enc.Output("INC", incCond)
	enc.Output("INV", invCond)

	dec := netlist.New("t0bi-dec")
	dB := dec.InputBus("B", width)
	dInc := dec.Input("INC")
	dInv := dec.Input("INV")
	prevDec, connectPrevDec := dec.RegBankFeedback(width)
	regen := dec.PrefixIncrementer(prevDec, strideLog)
	payload := dec.InvertBank(dB, dInv)
	addr := dec.MuxBank(payload, regen, dInc)
	connectPrevDec(addr)
	dec.OutputBus("b", addr)
	return Codec{Name: "t0bi", Width: width, Redundant: 2, Enc: enc, Dec: dec, ctrlOuts: []string{"INC", "INV"}}
}

// DualT0 returns the dual T0 codec hardware (paper eq. 8/9/10): the T0
// section of DualT0BI without the bus-invert path.
func DualT0(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	enc := netlist.New("dualt0-enc")
	b := enc.InputBus("b", width)
	sel := enc.Input("SEL")
	ref, connectRef := enc.RegBankFeedback(width)
	connectRef(enc.MuxBank(ref, b, sel))
	valid, connectValid := enc.DFFFeedback()
	connectValid(enc.Or(valid, sel))
	expected := enc.PrefixIncrementer(ref, strideLog)
	inc := enc.And(enc.And(sel, valid), enc.Equal(expected, b))
	prevBus, connectPrevBus := enc.RegBankFeedback(width)
	outB := enc.MuxBank(b, prevBus, inc)
	connectPrevBus(outB)
	enc.OutputBus("B", outB)
	enc.Output("INC", inc)

	dec := netlist.New("dualt0-dec")
	dB := dec.InputBus("B", width)
	dInc := dec.Input("INC")
	dSel := dec.Input("SEL")
	refD, connectRefD := dec.RegBankFeedback(width)
	regen := dec.PrefixIncrementer(refD, strideLog)
	addr := dec.MuxBank(dB, regen, dInc)
	connectRefD(dec.MuxBank(refD, addr, dSel))
	dec.OutputBus("b", addr)
	return Codec{Name: "dualt0", Width: width, Redundant: 1, Enc: enc, Dec: dec, UsesSel: true, ctrlOuts: []string{"INC"}}
}

// IncXor returns the INC-XOR codec hardware: the encoder XORs the address
// with the prediction (previous address plus stride); the decoder mirrors
// it. Both ends carry an address register and an incrementer.
func IncXor(width, strideLog int) Codec {
	if strideLog < 0 || strideLog >= width {
		panic(fmt.Sprintf("hw: strideLog %d out of range", strideLog))
	}
	build := func(name string, decode bool) *netlist.Netlist {
		n := netlist.New(name)
		inName := "b"
		if decode {
			inName = "B"
		}
		in := n.InputBus(inName, width)
		prevAddr, connectPrevAddr := n.RegBankFeedback(width)
		valid, connectValid := n.DFFFeedback()
		connectValid(n.Const1())
		expected := n.PrefixIncrementer(prevAddr, strideLog)
		prediction := make([]netlist.NetID, width)
		for i := range prediction {
			prediction[i] = n.And(expected[i], valid)
		}
		out := n.XorBank(in, prediction)
		if decode {
			connectPrevAddr(out)
			n.OutputBus("b", out)
		} else {
			connectPrevAddr(in)
			n.OutputBus("B", out)
		}
		return n
	}
	return Codec{
		Name:  "incxor",
		Width: width,
		Enc:   build("incxor-enc", false),
		Dec:   build("incxor-dec", true),
	}
}
