package trace

// Windowed phase analysis: programs move through phases (startup, hot
// loops, I/O) whose bus behaviour differs wildly from the stream average,
// which is what an *adaptive* encoding scheme would key on. WindowStats
// slices the stream into fixed-size windows and reports the statistics of
// each.

// Window is the statistics of one slice of the stream.
type Window struct {
	// Start is the index of the window's first reference.
	Start int
	// Len is the number of references in the window.
	Len int
	// InSeqFrac is the in-sequence fraction within the window (the pair
	// crossing into the window counts toward it).
	InSeqFrac float64
	// DataFrac is the fraction of data references.
	DataFrac float64
	// AvgTransitions is the mean binary bus transitions per cycle.
	AvgTransitions float64
}

// Windows computes per-window statistics with the given window size.
// The final window may be shorter. A non-positive size yields nil.
func (s *Stream) Windows(size int, stride uint64) []Window {
	if size <= 0 || s.Len() == 0 {
		return nil
	}
	var out []Window
	for start := 0; start < s.Len(); start += size {
		end := start + size
		if end > s.Len() {
			end = s.Len()
		}
		w := Window{Start: start, Len: end - start}
		inSeq, data, trans, pairs := 0, 0, int64(0), 0
		for i := start; i < end; i++ {
			e := s.Entries[i]
			if e.Kind.IsData() {
				data++
			}
			if i == 0 {
				continue
			}
			pairs++
			if e.Addr == s.Entries[i-1].Addr+stride {
				inSeq++
			}
			trans += int64(hammingU64(s.Entries[i-1].Addr, e.Addr, s.Width))
		}
		if pairs > 0 {
			w.InSeqFrac = float64(inSeq) / float64(pairs)
			w.AvgTransitions = float64(trans) / float64(pairs)
		}
		w.DataFrac = float64(data) / float64(w.Len)
		out = append(out, w)
	}
	return out
}

func hammingU64(a, b uint64, width int) int {
	x := a ^ b
	if width < 64 {
		x &= uint64(1)<<uint(width) - 1
	}
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// PhaseChanges returns the indices of windows whose in-sequence fraction
// differs from the previous window by more than threshold — a simple
// phase-boundary detector.
func PhaseChanges(windows []Window, threshold float64) []int {
	var out []int
	for i := 1; i < len(windows); i++ {
		d := windows[i].InSeqFrac - windows[i-1].InSeqFrac
		if d < 0 {
			d = -d
		}
		if d > threshold {
			out = append(out, i)
		}
	}
	return out
}
