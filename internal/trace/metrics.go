package trace

import (
	"io"
	"time"

	"busenc/internal/obs"
)

// Observability hooks for the streaming trace layer (see internal/obs).
// The handles live in the gated default registry: while metrics are
// disabled every handle is nil and each instrumented event costs one
// predictable branch; cmd binaries enable the registry at startup.
//
// Instrumented sites:
//
//   - ChunkPool.Get / Chunk.Release — pool gets, misses (a miss is a
//     fresh allocation via the pool's New), and the in-use occupancy
//     gauge (chunks handed out and not yet fully released);
//   - textChunkReader.Next / binaryChunkReader.Next /
//     memChunkReader.Next — chunks and entries parsed, parse errors
//     (first occurrence only; sticky repeats are not recounted), and
//     per-Next latency;
//   - OpenMmap / OpenFile zero-copy routing — views opened, opens that
//     fell back to a heap read, and bytes currently mapped (raised on
//     map, lowered on close).
type traceMetrics struct {
	chunksRead    *obs.Counter   // trace.chunks_read
	entriesRead   *obs.Counter   // trace.entries_read
	parseErrors   *obs.Counter   // trace.parse_errors
	poolGets      *obs.Counter   // trace.pool.gets
	poolMisses    *obs.Counter   // trace.pool.misses
	poolInUse     *obs.Gauge     // trace.pool.in_use
	readNs        *obs.Histogram // trace.chunk_read_ns
	mmapOpens     *obs.Counter   // trace.mmap.opens
	mmapFallbacks *obs.Counter   // trace.mmap.fallback_reads
	mmapBytes     *obs.Gauge     // trace.mmap.bytes_mapped
}

var metricsBinding = obs.NewBinding(func() *traceMetrics {
	return &traceMetrics{
		chunksRead:    obs.GetCounter("trace.chunks_read"),
		entriesRead:   obs.GetCounter("trace.entries_read"),
		parseErrors:   obs.GetCounter("trace.parse_errors"),
		poolGets:      obs.GetCounter("trace.pool.gets"),
		poolMisses:    obs.GetCounter("trace.pool.misses"),
		poolInUse:     obs.GetGauge("trace.pool.in_use"),
		readNs:        obs.GetHistogram("trace.chunk_read_ns"),
		mmapOpens:     obs.GetCounter("trace.mmap.opens"),
		mmapFallbacks: obs.GetCounter("trace.mmap.fallback_reads"),
		mmapBytes:     obs.GetGauge("trace.mmap.bytes_mapped"),
	}
})

func metrics() *traceMetrics { return metricsBinding.Get() }

// recordMmapOpen counts one zero-copy open of n bytes; fallback marks
// the read-into-memory path (no mapping to account for).
func recordMmapOpen(n int64, fallback bool) {
	m := metrics()
	m.mmapOpens.Inc()
	if fallback {
		m.mmapFallbacks.Inc()
	} else {
		m.mmapBytes.Add(n)
	}
}

// observeNext wraps one parser Next call with chunk/entry/error/latency
// accounting and a read-stage span (stream and chunk index attached, so
// the flight recorder attributes parse latency to a specific chunk).
// sticky reports whether the reader was already in a terminal state, so
// repeated returns of the same parse error are counted once.
func observeNext(sticky bool, stream string, chunk int, next func() (*Chunk, error)) (*Chunk, error) {
	m := metrics()
	sp := obs.StartSpan("trace.next", obs.StageRead).WithStream(stream).WithChunk(chunk)
	var t0 time.Time
	if m.readNs != nil {
		t0 = time.Now()
	}
	ch, err := next()
	if m.readNs != nil {
		m.readNs.Observe(time.Since(t0).Nanoseconds())
	}
	if err == nil {
		m.chunksRead.Inc()
		m.entriesRead.Add(int64(ch.Len()))
		sp.End()
	} else {
		if err != io.EOF && !sticky {
			m.parseErrors.Inc()
		}
		if err == io.EOF {
			sp.End() // end-of-stream is a normal read, not a failure
		} else {
			sp.EndErr(err)
		}
	}
	return ch, err
}
