package trace

import (
	"strings"
	"testing"

	"busenc/internal/obs"
)

// TestReaderMetrics: with observability enabled, the text reader
// accounts for chunks, entries and pool traffic, and a sticky parse
// error is counted exactly once no matter how often Next is retried.
func TestReaderMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	before := obs.Default().Snapshot()
	r, err := OpenText(strings.NewReader("# width: 16\nI 1\nR 2\nW 3\n"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("parsed %d entries, want 3", s.Len())
	}
	d := obs.Default().Snapshot().Diff(before)
	if got := d.Counters["trace.chunks_read"]; got != 1 {
		t.Errorf("chunks_read = %d, want 1", got)
	}
	if got := d.Counters["trace.entries_read"]; got != 3 {
		t.Errorf("entries_read = %d, want 3", got)
	}
	if got := d.Counters["trace.pool.gets"]; got < 1 {
		t.Errorf("pool.gets = %d, want >= 1", got)
	}
	if got := d.Histograms["trace.chunk_read_ns"].Count; got < 1 {
		t.Errorf("chunk_read_ns observations = %d, want >= 1", got)
	}
	if got := d.Gauges["trace.pool.in_use"]; got != 0 {
		t.Errorf("pool.in_use = %d after ReadAll, want 0", got)
	}

	// A parse error is counted once, then the sticky repeats are free.
	before = obs.Default().Snapshot()
	r, err = OpenText(strings.NewReader("I 1\nbogus line\n"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err == nil {
			t.Fatal("bad line accepted")
		}
	}
	d = obs.Default().Snapshot().Diff(before)
	if got := d.Counters["trace.parse_errors"]; got != 1 {
		t.Errorf("parse_errors = %d after 3 retries of one bad trace, want 1", got)
	}
}
