package trace

import (
	"bytes"
	"errors"
	"io"
)

// Zero-allocation parsing primitives shared by the streaming text and
// binary trace readers. The readers own one fillBuf each; all scanning
// happens in place over its window, so the steady-state allocation
// count of a parse is zero regardless of trace length (errors, which
// terminate the parse, are the only allocating path).

// maxLineLen bounds a single text line (and the fillBuf growth),
// matching the 1 MiB limit of the previous bufio.Scanner configuration.
const maxLineLen = 1 << 20

// fillBufSize is the initial read-buffer size.
const fillBufSize = 1 << 16

// fillBuf is a minimal buffered reader exposing its raw window:
// buf[start:end] holds unconsumed bytes. Unlike bufio.Reader it lets
// the parsers scan the window directly and consume exact byte counts.
type fillBuf struct {
	r          io.Reader
	buf        []byte
	start, end int
	eof        bool
}

func newFillBuf(r io.Reader) *fillBuf {
	return &fillBuf{r: r, buf: make([]byte, fillBufSize)}
}

// window returns the unconsumed bytes currently buffered.
func (f *fillBuf) window() []byte { return f.buf[f.start:f.end] }

// advance consumes n bytes of the window.
func (f *fillBuf) advance(n int) { f.start += n }

// fill compacts the window to the front of buf and reads more input,
// growing buf (up to maxLineLen) when the window already fills it. It
// returns an error only for real read failures; end-of-input just sets
// f.eof.
func (f *fillBuf) fill() error {
	if f.eof {
		return nil
	}
	if f.start > 0 {
		copy(f.buf, f.buf[f.start:f.end])
		f.end -= f.start
		f.start = 0
	}
	if f.end == len(f.buf) {
		if len(f.buf) >= maxLineLen {
			return io.ErrShortBuffer
		}
		nb := make([]byte, 2*len(f.buf))
		copy(nb, f.buf[:f.end])
		f.buf = nb
	}
	n, err := f.r.Read(f.buf[f.end:])
	f.end += n
	if err == io.EOF {
		f.eof = true
		return nil
	}
	return err
}

// peek ensures at least n bytes are buffered and returns the window, or
// io.ErrUnexpectedEOF when the input ends first.
func (f *fillBuf) peek(n int) ([]byte, error) {
	for f.end-f.start < n {
		if f.eof {
			return nil, io.ErrUnexpectedEOF
		}
		if err := f.fill(); err != nil {
			return nil, err
		}
	}
	return f.window(), nil
}

// readByte consumes and returns one byte.
func (f *fillBuf) readByte() (byte, error) {
	if f.start == f.end {
		if _, err := f.peek(1); err != nil {
			return 0, err
		}
	}
	b := f.buf[f.start]
	f.start++
	return b, nil
}

// readUvarint decodes an unsigned LEB128 varint from the buffer,
// mirroring binary.ReadUvarint's overflow rules.
func (f *fillBuf) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := f.readByte()
		if err != nil {
			return 0, err
		}
		if i == 10 || (i == 9 && b > 1) {
			return 0, errVarintOverflow
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readVarint decodes a signed zig-zag varint.
func (f *fillBuf) readVarint() (int64, error) {
	ux, err := f.readUvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

var errVarintOverflow = errors.New("trace: varint overflows 64 bits")

// readLine consumes and returns the next '\n'-terminated line (without
// the terminator); the final line needs no terminator. It returns
// io.EOF after the last line. The returned slice aliases the read
// buffer and is valid only until the next fillBuf call.
func (f *fillBuf) readLine() ([]byte, error) {
	for {
		w := f.window()
		if i := bytes.IndexByte(w, '\n'); i >= 0 {
			f.advance(i + 1)
			return w[:i], nil
		}
		if f.eof {
			if len(w) == 0 {
				return nil, io.EOF
			}
			f.advance(len(w))
			return w, nil
		}
		if err := f.fill(); err != nil {
			return nil, err
		}
	}
}

// peekLine returns the next line without consuming it, plus the number
// of bytes (line + terminator) a subsequent advance must consume.
func (f *fillBuf) peekLine() (line []byte, consume int, err error) {
	for {
		w := f.window()
		if i := bytes.IndexByte(w, '\n'); i >= 0 {
			return w[:i], i + 1, nil
		}
		if f.eof {
			if len(w) == 0 {
				return nil, 0, io.EOF
			}
			return w, len(w), nil
		}
		if err := f.fill(); err != nil {
			return nil, 0, err
		}
	}
}

// trimSpace trims ASCII whitespace (space, tab, CR) in place — the only
// whitespace the trace text format produces. Allocation-free.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// hexVal maps an ASCII byte to its hex digit value, or 0xFF.
var hexVal = func() (t [256]byte) {
	for i := range t {
		t[i] = 0xFF
	}
	for c := byte('0'); c <= '9'; c++ {
		t[c] = c - '0'
	}
	for c := byte('a'); c <= 'f'; c++ {
		t[c] = c - 'a' + 10
	}
	for c := byte('A'); c <= 'F'; c++ {
		t[c] = c - 'A' + 10
	}
	return
}()

// parseHex parses an unsigned hex number without allocation. It accepts
// leading zeros of any length but rejects empty input, non-hex bytes,
// and values that overflow 64 bits.
func parseHex(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	for len(b) > 1 && b[0] == '0' {
		b = b[1:]
	}
	if len(b) > 16 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		d := hexVal[c]
		if d == 0xFF {
			return 0, false
		}
		v = v<<4 | uint64(d)
	}
	return v, true
}

// parseDec parses an unsigned decimal number without allocation.
func parseDec(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}
