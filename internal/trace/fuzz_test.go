package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets for the streaming trace parsers. The seed corpus covers
// the header grammar, each entry kind, metadata edge cases, and the
// known rejection paths; `go test` runs the seeds as regular tests and
// `go test -fuzz=FuzzReadText ./internal/trace` explores further.

func FuzzReadText(f *testing.F) {
	seeds := []string{
		"",
		"\n\n",
		"# busenc trace v1\n# name: prog\n# width: 32\nI 400000\nR 10008fa0\nW 10008fa4\n",
		"# width: 16\nI ffff\n",
		"# width: 16\nI 10000\n", // exceeds declared width
		"# width: 64\nI ffffffffffffffff\n",
		"# width: 65\n", // invalid width
		"# name: spaces in name\nI 0\n",
		"I 0\n# width: 8\nR ff\n", // metadata after entries
		"X 400000\n",
		"I zzz\n",
		"I 1 2 3\n",
		"I\n",
		"# comment with no colon\nI 4\n",
		"I 00000000000000000001\n", // long leading zeros
		"\tI\t400000\t\r\n",        // tabs and CR
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Width metadata applies from where it appears, so a comment
		// after the entries can legally narrow the declared width below
		// earlier addresses; such streams do not reparse and are out of
		// scope for the round-trip invariant.
		mask := widthMask(s.Width)
		for _, e := range s.Entries {
			if e.Addr&^mask != 0 {
				return
			}
		}
		// A successfully parsed trace must survive a write/reparse
		// round trip unchanged.
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatalf("WriteText of parsed stream: %v", err)
		}
		got, err := ReadText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written stream: %v", err)
		}
		if len(got.Entries) != len(s.Entries) {
			t.Fatalf("round trip changed length: %d -> %d", len(s.Entries), len(got.Entries))
		}
		for i := range s.Entries {
			if s.Entries[i] != got.Entries[i] {
				t.Fatalf("entry %d changed: %+v -> %+v", i, s.Entries[i], got.Entries[i])
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Well-formed seeds from the writer plus handcrafted corruptions.
	mk := func(n int, seed int64) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, randomStream(n, seed)); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	f.Add(mk(0, 1))
	f.Add(mk(1, 2))
	f.Add(mk(100, 3))
	f.Add([]byte("BETR"))
	f.Add([]byte{'B', 'E', 'T', 'R', 1, 32, 0, 0})
	f.Add([]byte{'B', 'E', 'T', 'R', 2, 32, 0, 0})               // bad version
	f.Add([]byte{'B', 'E', 'T', 'R', 1, 8, 0, 1, 7, 0})          // bad kind
	f.Add([]byte{'B', 'E', 'T', 'R', 1, 8, 0xFF, 0xFF, 0xFF, 4}) // huge name length
	f.Add([]byte{'B', 'E', 'T', 'R', 1, 8, 0, 3, 0, 2, 1, 4})    // truncated entries
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatalf("WriteBinary of parsed stream: %v", err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written stream: %v", err)
		}
		if !streamsEqual(s, got) {
			t.Fatal("binary round trip changed the stream")
		}
	})
}
