package trace

import (
	"fmt"
	"io"
	"os"
)

// Streaming trace readers. OpenText and OpenBinary wrap an io.Reader in
// a ChunkReader that parses on demand into pooled chunks: memory use is
// bounded by the chunk pool no matter how large the trace is, and the
// per-entry path performs no allocations (no bufio.Scanner, no string
// conversion, no fmt). OpenFile sniffs the format from the first bytes.
// The materializing ReadText/ReadBinary in io.go are thin wrappers that
// drain these readers.

// textChunkReader streams the text trace format (see io.go).
type textChunkReader struct {
	f      *fillBuf
	file   string // for error positions; may be empty
	line   int
	name   string
	width  int
	mask   uint64
	pool   *ChunkPool
	chunks int   // chunks returned so far, for span attribution
	err    error // sticky terminal state (io.EOF or a parse error)
}

// OpenText returns a streaming reader over a text-format trace. file is
// used to position parse errors ("file:line:") and may be empty. A nil
// pool selects the shared default pool. Leading metadata comments are
// parsed eagerly so Name and Width are available before the first Next.
func OpenText(r io.Reader, file string, pool *ChunkPool) (ChunkReader, error) {
	t := &textChunkReader{
		f:     newFillBuf(r),
		file:  file,
		width: 32,
		mask:  widthMask(32),
		pool:  orDefaultPool(pool),
	}
	if err := t.readHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(w) - 1
}

// readHeader consumes the leading run of blank and comment lines —
// which is where WriteText puts the name/width metadata — so the
// reader's Name and Width are meaningful immediately after Open.
func (t *textChunkReader) readHeader() error {
	for {
		line, consume, err := t.f.peekLine()
		if err == io.EOF {
			t.err = io.EOF
			return nil
		}
		if err != nil {
			return t.posErr("%v", err)
		}
		trimmed := trimSpace(line)
		if len(trimmed) != 0 && trimmed[0] != '#' {
			return nil // first entry line: leave it for Next
		}
		t.line++
		if len(trimmed) != 0 {
			if err := t.meta(trimmed); err != nil {
				return err
			}
		}
		t.f.advance(consume)
	}
}

func (t *textChunkReader) Name() string { return t.name }
func (t *textChunkReader) Width() int   { return t.width }

func (t *textChunkReader) posErr(format string, args ...any) error {
	return posError(t.file, t.line, format, args...)
}

// meta applies one trimmed comment line's metadata.
func (t *textChunkReader) meta(line []byte) error {
	rest := trimSpace(line[1:]) // strip '#'
	switch {
	case hasPrefix(rest, "name:"):
		t.name = string(trimSpace(rest[len("name:"):]))
	case hasPrefix(rest, "width:"):
		w, ok := parseDec(trimSpace(rest[len("width:"):]))
		if !ok || w == 0 || w > 64 {
			return t.posErr("bad width %q", trimSpace(rest[len("width:"):]))
		}
		t.width = int(w)
		t.mask = widthMask(t.width)
	}
	return nil
}

func hasPrefix(b []byte, p string) bool {
	return len(b) >= len(p) && string(b[:len(p)]) == p
}

// entry parses one trimmed non-comment line ("<kind> <hex>") and
// appends it to the chunk.
func (t *textChunkReader) entry(line []byte, ch *Chunk) error {
	// Split on the first whitespace run.
	sp := 0
	for sp < len(line) && !isSpace(line[sp]) {
		sp++
	}
	if sp == len(line) {
		return t.posErr("expected \"<kind> <hex>\", got %q", line)
	}
	kindTok, rest := line[:sp], trimSpace(line[sp:])
	var k Kind
	switch {
	case len(kindTok) == 1 && kindTok[0] == 'I':
		k = Instr
	case len(kindTok) == 1 && kindTok[0] == 'R':
		k = DataRead
	case len(kindTok) == 1 && kindTok[0] == 'W':
		k = DataWrite
	default:
		return t.posErr("unknown kind %q", kindTok)
	}
	for _, c := range rest {
		if isSpace(c) {
			return t.posErr("expected \"<kind> <hex>\", got %q", line)
		}
	}
	addr, ok := parseHex(rest)
	if !ok {
		return t.posErr("bad address %q", rest)
	}
	if addr&^t.mask != 0 {
		return t.posErr("address %#x exceeds declared width %d", addr, t.width)
	}
	ch.append(addr, k)
	return nil
}

func (t *textChunkReader) Next() (*Chunk, error) {
	ch, err := observeNext(t.err != nil, t.name, t.chunks, t.next)
	if err == nil {
		t.chunks++
	}
	return ch, err
}

func (t *textChunkReader) next() (*Chunk, error) {
	if t.err != nil {
		return nil, t.err
	}
	ch := t.pool.Get()
	for ch.Len() < t.pool.Cap() {
		line, err := t.f.readLine()
		if err == io.EOF {
			t.err = io.EOF
			break
		}
		if err != nil {
			t.line++
			t.err = t.posErr("%v", err)
			break
		}
		t.line++
		line = trimSpace(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if err := t.meta(line); err != nil {
				t.err = err
				break
			}
			continue
		}
		if err := t.entry(line, ch); err != nil {
			t.err = err
			break
		}
	}
	if t.err != nil && t.err != io.EOF {
		ch.Release()
		return nil, t.err
	}
	if ch.Len() == 0 {
		ch.Release()
		return nil, io.EOF
	}
	return ch, nil
}

// binaryChunkReader streams the binary trace format (see io.go for the
// header layout).
type binaryChunkReader struct {
	f         *fillBuf
	file      string
	name      string
	width     int
	total     uint64
	remaining uint64
	prev      uint64
	pool      *ChunkPool
	chunks    int // chunks returned so far, for span attribution
	err       error
}

// OpenBinary returns a streaming reader over a binary-format trace,
// parsing the header eagerly (Name, Width and EntryCount are valid on
// return). file positions errors and may be empty; a nil pool selects
// the shared default pool.
func OpenBinary(r io.Reader, file string, pool *ChunkPool) (ChunkReader, error) {
	b := &binaryChunkReader{f: newFillBuf(r), file: file, pool: orDefaultPool(pool)}
	if err := b.readHeader(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *binaryChunkReader) ctx(format string, args ...any) error {
	if b.file != "" {
		return fmt.Errorf("trace: %s: %s", b.file, fmt.Sprintf(format, args...))
	}
	return fmt.Errorf("trace: %s", fmt.Sprintf(format, args...))
}

func (b *binaryChunkReader) readHeader() error {
	w, err := b.f.peek(4)
	if err != nil {
		return b.ctx("reading magic: %v", err)
	}
	if string(w[:4]) != binMagic {
		return b.ctx("bad magic %q", w[:4])
	}
	b.f.advance(4)
	ver, err := b.f.readByte()
	if err != nil {
		return b.ctx("reading version: %v", err)
	}
	if ver != 1 {
		return b.ctx("unsupported version %d", ver)
	}
	widthB, err := b.f.readByte()
	if err != nil {
		return b.ctx("reading width: %v", err)
	}
	nameLen, err := b.f.readUvarint()
	if err != nil {
		return b.ctx("reading name length: %v", err)
	}
	if nameLen > 1<<20 {
		return b.ctx("unreasonable name length %d", nameLen)
	}
	nb, err := b.f.peek(int(nameLen))
	if err != nil {
		return b.ctx("reading name: %v", err)
	}
	b.name = string(nb[:nameLen])
	b.f.advance(int(nameLen))
	count, err := b.f.readUvarint()
	if err != nil {
		return b.ctx("reading entry count: %v", err)
	}
	b.width = int(widthB)
	b.total = count
	b.remaining = count
	return nil
}

func (b *binaryChunkReader) Name() string { return b.name }
func (b *binaryChunkReader) Width() int   { return b.width }

// EntryCount reports the header-declared entry count (entryCounter).
func (b *binaryChunkReader) EntryCount() (uint64, bool) { return b.total, true }

func (b *binaryChunkReader) Next() (*Chunk, error) {
	ch, err := observeNext(b.err != nil, b.name, b.chunks, b.next)
	if err == nil {
		b.chunks++
	}
	return ch, err
}

func (b *binaryChunkReader) next() (*Chunk, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.remaining == 0 {
		b.err = io.EOF
		return nil, io.EOF
	}
	ch := b.pool.Get()
	n := uint64(b.pool.Cap())
	if n > b.remaining {
		n = b.remaining
	}
	entry := b.total - b.remaining
	prev := b.prev
	for i := uint64(0); i < n; i++ {
		kb, err := b.f.readByte()
		if err != nil {
			ch.Release()
			b.err = b.ctx("entry %d: %v", entry+i, err)
			return nil, b.err
		}
		if kb > byte(DataWrite) {
			ch.Release()
			b.err = b.ctx("entry %d: bad kind %d", entry+i, kb)
			return nil, b.err
		}
		delta, err := b.f.readVarint()
		if err != nil {
			ch.Release()
			b.err = b.ctx("entry %d: %v", entry+i, err)
			return nil, b.err
		}
		prev += uint64(delta)
		ch.append(prev, Kind(kb))
	}
	b.prev = prev
	b.remaining -= n
	return ch, nil
}

// OpenFile opens a trace file and auto-detects its format from the
// magic bytes: files starting with "BETR" stream as binary, anything
// else as text. Regular binary files take the zero-copy mmap path
// (decoding straight from the mapped view, no buffered-read copies);
// pipes, FIFOs, text traces and platforms without mmap stream through
// the buffered parser. The returned Closer closes the underlying file
// (and unmaps the view on the zero-copy path) and must be called when
// done (also after read errors).
func OpenFile(path string, pool *ChunkPool) (ChunkReader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// Zero-copy fast path: a regular file with the binary magic maps
	// directly. ReadAt leaves the offset alone, so the buffered path
	// below still starts at byte 0 when mapping is not possible.
	if st, serr := f.Stat(); serr == nil && st.Mode().IsRegular() && st.Size() >= int64(len(binMagic)) {
		var magic [len(binMagic)]byte
		if _, rerr := f.ReadAt(magic[:], 0); rerr == nil && string(magic[:]) == binMagic {
			if data, merr := mapFile(f, st.Size()); merr == nil {
				mr, err := newMemReader(data, path, pool, true)
				if err != nil {
					unmapFile(data)
					f.Close()
					return nil, nil, err
				}
				recordMmapOpen(int64(len(data)), false)
				return mr, &mappedCloser{data: data, unmap: true, f: f}, nil
			}
		}
	}
	fb := newFillBuf(f)
	w, err := fb.peek(len(binMagic))
	isBinary := err == nil && string(w[:len(binMagic)]) == binMagic
	var cr ChunkReader
	if isBinary {
		b := &binaryChunkReader{f: fb, file: path, pool: orDefaultPool(pool)}
		if err := b.readHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		cr = b
	} else {
		t := &textChunkReader{
			f:     fb,
			file:  path,
			width: 32,
			mask:  widthMask(32),
			pool:  orDefaultPool(pool),
		}
		if err := t.readHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		cr = t
	}
	return cr, f, nil
}
