package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Zero-copy binary trace ingest. A BETR file on disk is already the
// byte stream the binary parser wants, so for regular files the
// buffered-reader layer (fillBuf's read-compact-refill copies) is pure
// overhead: memChunkReader decodes kind bytes and address varints
// directly from a memory-mapped view of the file. The kernel pages the
// trace in on demand and the page cache is shared across processes, so
// opening a multi-GB trace costs no read() traffic up front and no
// userspace copy at all. Platforms without mmap (and callers handing
// in their own buffers) use the same decoder over a read-into-memory
// fallback; pipes and FIFOs keep the streaming fillBuf path.

// errMmapUnsupported is returned by mapFile on platforms without an
// mmap implementation; OpenMmap then falls back to reading the file.
var errMmapUnsupported = errors.New("trace: mmap not supported on this platform")

// memChunkReader streams the binary trace format out of an in-memory
// byte slice — an mmap'd file view or a fully read buffer. It is the
// zero-copy counterpart of binaryChunkReader: same header handling,
// same chunk granularity, same error positions, no intermediate
// buffering layer.
type memChunkReader struct {
	data      []byte
	pos       int
	file      string
	name      string
	width     int
	total     uint64
	remaining uint64
	prev      uint64
	pool      *ChunkPool
	chunks    int
	mapped    bool // view is an mmap, not a heap buffer (for tests/metrics)
	err       error
}

// NewMemReader returns a streaming reader decoding a binary-format
// trace directly from data, which must start with the "BETR" magic.
// The header is parsed eagerly (Name, Width, EntryCount valid on
// return). data is aliased, not copied: it must stay valid and
// unmodified until the reader is done. file positions errors and may
// be empty; a nil pool selects the shared default pool.
func NewMemReader(data []byte, file string, pool *ChunkPool) (ChunkReader, error) {
	return newMemReader(data, file, pool, false)
}

func newMemReader(data []byte, file string, pool *ChunkPool, mapped bool) (*memChunkReader, error) {
	m := &memChunkReader{data: data, file: file, pool: orDefaultPool(pool), mapped: mapped}
	if err := m.readHeader(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *memChunkReader) ctx(format string, args ...any) error {
	if m.file != "" {
		return fmt.Errorf("trace: %s: %s", m.file, fmt.Sprintf(format, args...))
	}
	return fmt.Errorf("trace: %s", fmt.Sprintf(format, args...))
}

// uvarint decodes one unsigned varint at m.pos, advancing it.
func (m *memChunkReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(m.data[m.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, errVarintOverflow
	}
	m.pos += n
	return x, nil
}

func (m *memChunkReader) readHeader() error {
	if len(m.data) < len(binMagic) {
		return m.ctx("reading magic: %v", io.ErrUnexpectedEOF)
	}
	if string(m.data[:len(binMagic)]) != binMagic {
		return m.ctx("bad magic %q", m.data[:len(binMagic)])
	}
	m.pos = len(binMagic)
	if m.pos+2 > len(m.data) {
		return m.ctx("reading version: %v", io.ErrUnexpectedEOF)
	}
	ver := m.data[m.pos]
	if ver != 1 {
		return m.ctx("unsupported version %d", ver)
	}
	m.width = int(m.data[m.pos+1])
	m.pos += 2
	nameLen, err := m.uvarint()
	if err != nil {
		return m.ctx("reading name length: %v", err)
	}
	if nameLen > 1<<20 {
		return m.ctx("unreasonable name length %d", nameLen)
	}
	if uint64(len(m.data)-m.pos) < nameLen {
		return m.ctx("reading name: %v", io.ErrUnexpectedEOF)
	}
	m.name = string(m.data[m.pos : m.pos+int(nameLen)])
	m.pos += int(nameLen)
	count, err := m.uvarint()
	if err != nil {
		return m.ctx("reading entry count: %v", err)
	}
	m.total = count
	m.remaining = count
	return nil
}

func (m *memChunkReader) Name() string { return m.name }
func (m *memChunkReader) Width() int   { return m.width }

// EntryCount reports the header-declared entry count (entryCounter).
func (m *memChunkReader) EntryCount() (uint64, bool) { return m.total, true }

func (m *memChunkReader) Next() (*Chunk, error) {
	ch, err := observeNext(m.err != nil, m.name, m.chunks, m.next)
	if err == nil {
		m.chunks++
	}
	return ch, err
}

func (m *memChunkReader) next() (*Chunk, error) {
	if m.err != nil {
		return nil, m.err
	}
	if m.remaining == 0 {
		m.err = io.EOF
		return nil, io.EOF
	}
	ch := m.pool.Get()
	n := uint64(m.pool.Cap())
	if n > m.remaining {
		n = m.remaining
	}
	entry := m.total - m.remaining
	data := m.data
	pos := m.pos
	prev := m.prev
	for i := uint64(0); i < n; i++ {
		if pos >= len(data) {
			ch.Release()
			m.err = m.ctx("entry %d: %v", entry+i, io.ErrUnexpectedEOF)
			return nil, m.err
		}
		kb := data[pos]
		pos++
		if kb > byte(DataWrite) {
			ch.Release()
			m.err = m.ctx("entry %d: bad kind %d", entry+i, kb)
			return nil, m.err
		}
		ux, sz := binary.Uvarint(data[pos:])
		if sz <= 0 {
			ch.Release()
			if sz == 0 {
				m.err = m.ctx("entry %d: %v", entry+i, io.ErrUnexpectedEOF)
			} else {
				m.err = m.ctx("entry %d: %v", entry+i, errVarintOverflow)
			}
			return nil, m.err
		}
		pos += sz
		delta := int64(ux >> 1)
		if ux&1 != 0 {
			delta = ^delta
		}
		prev += uint64(delta)
		ch.append(prev, Kind(kb))
	}
	m.pos = pos
	m.prev = prev
	m.remaining -= n
	return ch, nil
}

// mappedCloser tears down an OpenMmap view: unmap (when mapped) then
// close the file. Closing while chunks from the reader are still being
// consumed is a use-after-unmap on the mapped variant — callers keep
// the OpenFile contract of closing only when done reading.
type mappedCloser struct {
	data  []byte
	unmap bool
	f     *os.File
}

func (c *mappedCloser) Close() error {
	var err error
	if c.unmap && c.data != nil {
		err = unmapFile(c.data)
		metrics().mmapBytes.Add(-int64(len(c.data)))
		c.data = nil
	}
	if c.f != nil {
		if cerr := c.f.Close(); err == nil {
			err = cerr
		}
		c.f = nil
	}
	return err
}

// OpenMmap opens a binary-format trace file through the zero-copy
// in-memory decoder: the file is memory-mapped where the platform
// supports it and read fully into memory otherwise (the portable
// fallback — same decoder, heap-backed view). The file must be a
// regular file holding a BETR trace; use OpenFile for pipes, FIFOs or
// format sniffing. The returned Closer unmaps and closes the file and
// must be called only after the last chunk has been consumed.
func OpenMmap(path string, pool *ChunkPool) (ChunkReader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if !st.Mode().IsRegular() {
		f.Close()
		return nil, nil, fmt.Errorf("trace: %s: not a regular file; use OpenFile for streaming input", path)
	}
	if data, err := mapFile(f, st.Size()); err == nil {
		mr, err := newMemReader(data, path, pool, true)
		if err != nil {
			unmapFile(data)
			f.Close()
			return nil, nil, err
		}
		recordMmapOpen(int64(len(data)), false)
		return mr, &mappedCloser{data: data, unmap: true, f: f}, nil
	}
	// mmap failed (unsupported platform, empty file, exotic fs): read
	// the whole file and decode from the heap buffer. The file can be
	// closed right away — the buffer owns the bytes now.
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	mr, err := newMemReader(data, path, pool, false)
	if err != nil {
		return nil, nil, err
	}
	recordMmapOpen(int64(len(data)), true)
	return mr, &mappedCloser{}, nil
}
