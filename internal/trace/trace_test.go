package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if Instr.String() != "I" || DataRead.String() != "R" || DataWrite.String() != "W" {
		t.Error("kind mnemonics wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind: %s", Kind(9))
	}
}

func TestKindPredicates(t *testing.T) {
	if Instr.IsData() {
		t.Error("Instr should not be data")
	}
	if !DataRead.IsData() || !DataWrite.IsData() {
		t.Error("reads and writes are data")
	}
	if !(Entry{Kind: Instr}).Sel() {
		t.Error("SEL must be asserted for instruction entries")
	}
	if (Entry{Kind: DataRead}).Sel() {
		t.Error("SEL must be de-asserted for data entries")
	}
}

func seqStream(name string, n int, start, stride uint64) *Stream {
	s := New(name, 32)
	for i := 0; i < n; i++ {
		s.Append(start+uint64(i)*stride, Instr)
	}
	return s
}

func TestAppendLenAddresses(t *testing.T) {
	s := seqStream("s", 4, 0x100, 4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	want := []uint64{0x100, 0x104, 0x108, 0x10C}
	for i, a := range s.Addresses() {
		if a != want[i] {
			t.Errorf("addr[%d] = %#x, want %#x", i, a, want[i])
		}
	}
}

func TestFilterSplitsKinds(t *testing.T) {
	s := New("m", 32)
	s.Append(0x0, Instr)
	s.Append(0x1000, DataRead)
	s.Append(0x4, Instr)
	s.Append(0x2000, DataWrite)

	in := s.InstrOnly()
	if in.Len() != 2 || in.Entries[0].Addr != 0 || in.Entries[1].Addr != 4 {
		t.Errorf("InstrOnly wrong: %+v", in.Entries)
	}
	if in.Name != "m.instr" {
		t.Errorf("InstrOnly name = %q", in.Name)
	}
	da := s.DataOnly()
	if da.Len() != 2 || da.Entries[0].Addr != 0x1000 || da.Entries[1].Addr != 0x2000 {
		t.Errorf("DataOnly wrong: %+v", da.Entries)
	}
}

func TestSlice(t *testing.T) {
	s := seqStream("s", 10, 0, 4)
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.Entries[0].Addr != 8 {
		t.Errorf("Slice wrong: %+v", sub.Entries)
	}
}

func TestAnalyzeSequential(t *testing.T) {
	s := seqStream("s", 100, 0x400000, 4)
	st := s.Analyze(4)
	if st.Length != 100 {
		t.Errorf("Length = %d", st.Length)
	}
	if st.InSeq != 99 {
		t.Errorf("InSeq = %d, want 99", st.InSeq)
	}
	if st.InSeqFrac != 1.0 {
		t.Errorf("InSeqFrac = %v, want 1", st.InSeqFrac)
	}
	if st.MaxRunLen != 99 {
		t.Errorf("MaxRunLen = %d, want 99", st.MaxRunLen)
	}
	if st.UniqueAddrs != 100 {
		t.Errorf("UniqueAddrs = %d", st.UniqueAddrs)
	}
}

func TestAnalyzeMixed(t *testing.T) {
	s := New("mix", 32)
	// Two runs of 3 in-sequence refs separated by a jump; stride 4.
	for _, a := range []uint64{0, 4, 8, 0x1000, 0x1004, 0x1008} {
		s.Append(a, Instr)
	}
	st := s.Analyze(4)
	if st.InSeq != 4 {
		t.Errorf("InSeq = %d, want 4", st.InSeq)
	}
	if st.MaxRunLen != 2 {
		t.Errorf("MaxRunLen = %d, want 2", st.MaxRunLen)
	}
	if st.MeanRunLen != 2 {
		t.Errorf("MeanRunLen = %v, want 2", st.MeanRunLen)
	}
}

func TestAnalyzeWrongStrideSeesNoSequence(t *testing.T) {
	s := seqStream("s", 50, 0, 4)
	if f := s.InSeqFraction(1); f != 0 {
		t.Errorf("stride-1 fraction on stride-4 stream = %v, want 0", f)
	}
}

func TestAnalyzeEmptyAndSingle(t *testing.T) {
	empty := New("e", 32)
	st := empty.Analyze(4)
	if st.Length != 0 || st.InSeq != 0 || st.InSeqFrac != 0 {
		t.Errorf("empty stream stats: %+v", st)
	}
	one := seqStream("o", 1, 0, 4)
	st = one.Analyze(4)
	if st.Length != 1 || st.InSeqFrac != 0 {
		t.Errorf("single-entry stream stats: %+v", st)
	}
}

func TestBinaryTransitionsReported(t *testing.T) {
	s := New("t", 8)
	s.Append(0x00, Instr)
	s.Append(0x0F, Instr)
	st := s.Analyze(1)
	if st.BinaryTransitions != 4 {
		t.Errorf("BinaryTransitions = %d, want 4", st.BinaryTransitions)
	}
}

func TestPerLineActivity(t *testing.T) {
	s := New("t", 4)
	s.Append(0b0000, Instr)
	s.Append(0b0001, Instr)
	s.Append(0b0000, Instr)
	act := s.PerLineActivity()
	if act[0] != 1.0 {
		t.Errorf("line 0 activity = %v, want 1", act[0])
	}
	for i := 1; i < 4; i++ {
		if act[i] != 0 {
			t.Errorf("line %d activity = %v, want 0", i, act[i])
		}
	}
}

func TestJumpHistogram(t *testing.T) {
	s := New("t", 32)
	s.Append(0, Instr)
	s.Append(4, Instr)      // in-seq, not a jump
	s.Append(4+16, Instr)   // jump of 16 -> bucket 4
	s.Append(4+16+1, Instr) // jump of 1 -> bucket 0
	h := s.JumpHistogram(4)
	if len(h) < 5 {
		t.Fatalf("histogram too short: %v", h)
	}
	if h[4] != 1 {
		t.Errorf("bucket 4 = %d, want 1", h[4])
	}
	if h[0] != 1 {
		t.Errorf("bucket 0 = %d, want 1", h[0])
	}
}

func TestEntropy(t *testing.T) {
	s := New("t", 32)
	for i := 0; i < 8; i++ {
		s.Append(uint64(i%2), Instr)
	}
	if h := s.Entropy(); h != 1.0 {
		t.Errorf("entropy of a fair 2-symbol stream = %v, want 1", h)
	}
	u := New("u", 32)
	for i := 0; i < 8; i++ {
		u.Append(7, Instr)
	}
	if h := u.Entropy(); h != 0 {
		t.Errorf("entropy of a constant stream = %v, want 0", h)
	}
	if (New("e", 32)).Entropy() != 0 {
		t.Error("entropy of an empty stream should be 0")
	}
}

func TestWorkingSet(t *testing.T) {
	s := New("t", 32)
	for _, a := range []uint64{5, 1, 5, 3, 1} {
		s.Append(a, DataRead)
	}
	ws := s.WorkingSet()
	want := []uint64{1, 3, 5}
	if len(ws) != len(want) {
		t.Fatalf("WorkingSet = %v", ws)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("WorkingSet[%d] = %d, want %d", i, ws[i], want[i])
		}
	}
}

func TestMux(t *testing.T) {
	instr := []uint64{0, 4, 8}
	data := []uint64{0x100, 0x200}
	pattern := []Kind{Instr, DataRead, Instr, DataWrite, Instr}
	m := Mux("m", 32, instr, data, pattern)
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	wantAddr := []uint64{0, 0x100, 4, 0x200, 8}
	wantKind := []Kind{Instr, DataRead, Instr, DataWrite, Instr}
	for i := range wantAddr {
		if m.Entries[i].Addr != wantAddr[i] || m.Entries[i].Kind != wantKind[i] {
			t.Errorf("entry %d = %+v", i, m.Entries[i])
		}
	}
}
