package trace

import (
	"math"
	"testing"
)

func TestWindowsBasic(t *testing.T) {
	s := New("w", 32)
	// First 100 refs sequential, next 100 constant-jumping.
	for i := 0; i < 100; i++ {
		s.Append(uint64(0x1000+i*4), Instr)
	}
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			s.Append(0x10000000, DataRead)
		} else {
			s.Append(0x7FFF0000, DataWrite)
		}
	}
	ws := s.Windows(100, 4)
	if len(ws) != 2 {
		t.Fatalf("windows: %d", len(ws))
	}
	if ws[0].InSeqFrac < 0.98 {
		t.Errorf("window 0 in-seq = %v", ws[0].InSeqFrac)
	}
	if ws[1].InSeqFrac != 0 {
		t.Errorf("window 1 in-seq = %v", ws[1].InSeqFrac)
	}
	if ws[0].DataFrac != 0 || ws[1].DataFrac != 1 {
		t.Errorf("data fractions: %v %v", ws[0].DataFrac, ws[1].DataFrac)
	}
	// Sequential window: ~2 transitions/cycle; alternating window: the
	// Hamming distance between the two data addresses every cycle.
	if ws[0].AvgTransitions > 3 {
		t.Errorf("window 0 transitions = %v", ws[0].AvgTransitions)
	}
	wantAlt := float64(hammingU64(0x10000000, 0x7FFF0000, 32))
	if math.Abs(ws[1].AvgTransitions-wantAlt) > 0.2 {
		t.Errorf("window 1 transitions = %v, want ~%v", ws[1].AvgTransitions, wantAlt)
	}
}

func TestWindowsEdgeCases(t *testing.T) {
	s := New("e", 32)
	if s.Windows(10, 4) != nil {
		t.Error("empty stream should yield no windows")
	}
	s.Append(1, Instr)
	if s.Windows(0, 4) != nil {
		t.Error("non-positive window size should yield nil")
	}
	ws := s.Windows(10, 4)
	if len(ws) != 1 || ws[0].Len != 1 {
		t.Errorf("single-entry stream windows: %+v", ws)
	}
	// Uneven tail window.
	for i := 0; i < 14; i++ {
		s.Append(uint64(i), Instr)
	}
	ws = s.Windows(10, 4)
	if len(ws) != 2 || ws[1].Len != 5 {
		t.Errorf("tail window: %+v", ws)
	}
}

func TestPhaseChanges(t *testing.T) {
	ws := []Window{
		{InSeqFrac: 0.9}, {InSeqFrac: 0.88}, {InSeqFrac: 0.1}, {InSeqFrac: 0.12}, {InSeqFrac: 0.95},
	}
	got := PhaseChanges(ws, 0.5)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("phase changes: %v", got)
	}
	if PhaseChanges(ws, 2) != nil {
		t.Error("impossible threshold should find nothing")
	}
}
