package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBinaryFile materializes s as a binary trace file and returns
// its path.
func writeBinaryFile(t *testing.T, s *Stream) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.betr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewMemReaderParity(t *testing.T) {
	s := randomStream(5000, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Small pool: many chunk boundaries inside the decode loop.
	r, err := NewMemReader(buf.Bytes(), "mem", NewChunkPool(17))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != s.Name || r.Width() != s.Width {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", r.Name(), r.Width(), s.Name, s.Width)
	}
	if n, ok := r.(entryCounter).EntryCount(); !ok || n != uint64(len(s.Entries)) {
		t.Fatalf("EntryCount = %d,%v; want %d,true", n, ok, len(s.Entries))
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("mem reader mismatch vs original stream")
	}
}

func TestOpenMmapParity(t *testing.T) {
	s := randomStream(3000, 12)
	path := writeBinaryFile(t, s)
	r, closer, err := OpenMmap(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("mmap reader mismatch vs original stream")
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenFileRoutesBinaryToMmap(t *testing.T) {
	s := randomStream(100, 13)
	path := writeBinaryFile(t, s)
	r, closer, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, ok := r.(*memChunkReader); !ok {
		t.Fatalf("OpenFile on a regular binary file returned %T; want *memChunkReader", r)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("OpenFile mmap route mismatch vs original stream")
	}
}

func TestOpenFileTextStaysBuffered(t *testing.T) {
	s := randomStream(50, 14)
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, closer, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, ok := r.(*memChunkReader); ok {
		t.Fatal("OpenFile routed a text trace to the memory reader")
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("OpenFile text route mismatch vs original stream")
	}
}

func TestOpenMmapRejectsNonRegular(t *testing.T) {
	if _, _, err := OpenMmap(t.TempDir(), nil); err == nil {
		t.Fatal("OpenMmap on a directory succeeded")
	}
}

func TestNewMemReaderErrors(t *testing.T) {
	s := randomStream(200, 15)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	if _, err := NewMemReader([]byte("nope"), "f", nil); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := NewMemReader(whole[:2], "f", nil); err == nil {
		t.Error("truncated magic accepted")
	}
	// Truncate inside the entry payload: the header parses, decoding
	// fails at some entry with a positioned error.
	r, err := NewMemReader(whole[:len(whole)-3], "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReadAll(r)
	if err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("truncated payload: got %v", err)
	}
	// Bad kind byte in the first entry.
	bad := append([]byte(nil), whole...)
	hdrEnd := len(whole) - binaryPayloadLen(s)
	bad[hdrEnd] = 0x7F
	r, err = NewMemReader(bad, "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = ReadAll(r); err == nil || !strings.Contains(err.Error(), "bad kind") {
		t.Errorf("bad kind: got %v", err)
	}
}

// binaryPayloadLen computes the byte length of s's entry payload by
// re-encoding only the entries (total file minus header).
func binaryPayloadLen(s *Stream) int {
	var whole, hdr bytes.Buffer
	if err := WriteBinary(&whole, s); err != nil {
		panic(err)
	}
	empty := New(s.Name, s.Width)
	if err := WriteBinary(&hdr, empty); err != nil {
		panic(err)
	}
	// Headers differ only in the entry-count varint; recompute exactly.
	return whole.Len() - (hdr.Len() - uvarintLen(0) + uvarintLen(uint64(len(s.Entries))))
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func BenchmarkMemReaderNext(b *testing.B) {
	s := randomStream(1<<16, 16)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(s.Entries)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewMemReader(data, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadAll(r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOpenMmapZeroLengthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.betr")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenMmap(path, nil)
	if err == nil {
		t.Fatal("OpenMmap on a zero-length file succeeded")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the file", err)
	}
}

// TestOpenMmapTruncatedMidVarint: a BETR file cut mid-record must fail
// with a positioned error — at open time when the header itself is cut,
// at decode time when an entry's delta varint is — never panic. The
// stream uses large address jumps so every delta varint is multi-byte
// and a one-byte truncation lands inside one.
func TestOpenMmapTruncatedMidVarint(t *testing.T) {
	s := New("wide", 48)
	for i := 0; i < 64; i++ {
		s.Append(uint64(i)*0x1234_5678_9ABC, Instr)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		keep int
	}{
		{"mid-header", 6},               // inside magic/version/name-length region
		{"mid-payload", len(whole) - 1}, // inside the last entry's delta varint
		{"mid-middle", len(whole) / 2},
	} {
		path := filepath.Join(dir, tc.name+".betr")
		if err := os.WriteFile(path, whole[:tc.keep], 0o644); err != nil {
			t.Fatal(err)
		}
		r, closer, err := OpenMmap(path, nil)
		if err == nil {
			// Header parsed; the truncation must surface while decoding.
			_, err = ReadAll(r)
			closer.Close()
			if err == nil {
				t.Errorf("%s: truncated file decoded cleanly", tc.name)
				continue
			}
			if !strings.Contains(err.Error(), "entry") {
				t.Errorf("%s: decode error %q not positioned at an entry", tc.name, err)
			}
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error %q does not name the file", tc.name, err)
		}
	}
}
