package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Shard planning over a BETR byte view. The binary format is a varint
// delta chain — entry k's address is recoverable only from entry k-1's
// — so a byte range of the file is decodable on its own exactly when it
// comes with the address the chain held at its left edge. RangeCut
// captures that: the byte offset where an entry's record starts plus
// the two preceding entries (the first so the delta chain can continue,
// both so shard pricing can rebuild its encoder/decoder boundary, see
// codec.Boundary). IndexBETR produces the cuts with one cheap scan —
// no entries are materialized, no shard files are written — and
// NewMemRangeReader turns a cut back into a streaming reader over the
// same mapping. The distributed sweep (internal/dist) plans with
// IndexBETR in the coordinator and decodes with NewMemRangeReader in
// the workers; both sides share the kernel page cache, so a shard is
// never copied.

// RangeCut locates one shard boundary inside a BETR payload.
type RangeCut struct {
	// Entry is the global index of the first entry at or after the cut.
	Entry int64 `json:"entry"`
	// Off is the byte offset of that entry's record (its kind byte) in
	// the file. For the end-of-stream sentinel it is the payload end.
	Off int64 `json:"off"`
	// PrevAddr and PrevKind describe entry Entry-1 (valid when
	// Entry >= 1): the delta base for decoding and the boundary entry a
	// shard re-encodes to prime its bus.
	PrevAddr uint64 `json:"prev_addr"`
	PrevKind Kind   `json:"prev_kind"`
	// Prev2Addr and Prev2Kind describe entry Entry-2 (valid when
	// Entry >= 2): the seed symbol for previous-symbol codecs.
	Prev2Addr uint64 `json:"prev2_addr"`
	Prev2Kind Kind   `json:"prev2_kind"`
}

// BETRIndex is the product of one planning scan: the header metadata
// plus parts+1 cuts — cuts[k] is entry k*Total/parts, cuts[parts] the
// end-of-stream sentinel — so shard k is entries
// [Cuts[k].Entry, Cuts[k+1].Entry) decoded from byte Cuts[k].Off.
type BETRIndex struct {
	Name  string     `json:"name"`
	Width int        `json:"width"`
	Total int64      `json:"total"`
	Cuts  []RangeCut `json:"cuts"`
}

// IndexBETR scans a BETR byte view (an mmap'd file or an in-memory
// buffer) and plans parts contiguous shards with sizes as equal as
// possible (the same k*n/p cut policy as codec.RunParallel). Errors are
// positioned like the streaming reader's; file may be empty.
func IndexBETR(data []byte, file string, parts int) (*BETRIndex, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("trace: plan of %d parts", parts)
	}
	m, err := newMemReader(data, file, nil, false)
	if err != nil {
		return nil, err
	}
	total := int64(m.total)
	idx := &BETRIndex{Name: m.name, Width: m.width, Total: total, Cuts: make([]RangeCut, 0, parts+1)}
	// The k*n/p cut policy; repeated targets yield empty shards when
	// parts exceeds the entry count.
	targets := make([]int64, parts+1)
	for k := range targets {
		targets[k] = int64(k) * total / int64(parts)
	}
	var prevAddr, prev2Addr uint64
	var prevKind, prev2Kind Kind
	pos := int64(m.pos)
	addr := uint64(0)
	k := 0
	for e := int64(0); e <= total; e++ {
		for k <= parts && targets[k] == e {
			idx.Cuts = append(idx.Cuts, RangeCut{Entry: e, Off: pos,
				PrevAddr: prevAddr, PrevKind: prevKind,
				Prev2Addr: prev2Addr, Prev2Kind: prev2Kind})
			k++
		}
		if e == total {
			break
		}
		if pos >= int64(len(data)) {
			return nil, m.ctx("entry %d: %v", e, io.ErrUnexpectedEOF)
		}
		kb := data[pos]
		if kb > byte(DataWrite) {
			return nil, m.ctx("entry %d: bad kind %d", e, kb)
		}
		ux, sz := binary.Uvarint(data[pos+1:])
		if sz <= 0 {
			if sz == 0 {
				return nil, m.ctx("entry %d: %v", e, io.ErrUnexpectedEOF)
			}
			return nil, m.ctx("entry %d: %v", e, errVarintOverflow)
		}
		delta := int64(ux >> 1)
		if ux&1 != 0 {
			delta = ^delta
		}
		addr += uint64(delta)
		pos += 1 + int64(sz)
		prev2Addr, prev2Kind = prevAddr, prevKind
		prevAddr, prevKind = addr, Kind(kb)
	}
	if got := len(idx.Cuts); got != parts+1 {
		return nil, fmt.Errorf("trace: planned %d cuts for %d parts", got, parts)
	}
	return idx, nil
}

// NewMemRangeReader returns a streaming reader over n entries of a BETR
// byte view starting at cut (as planned by IndexBETR over the same
// view). name and width come from the BETRIndex; data is aliased, not
// copied, and must stay valid until the reader is done.
func NewMemRangeReader(data []byte, name string, width int, cut RangeCut, n int64, file string, pool *ChunkPool) (ChunkReader, error) {
	if cut.Off < 0 || cut.Off > int64(len(data)) {
		return nil, fmt.Errorf("trace: range cut at byte %d of a %d-byte view", cut.Off, len(data))
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: range of %d entries", n)
	}
	return &memChunkReader{
		data:      data,
		pos:       int(cut.Off),
		file:      file,
		name:      name,
		width:     width,
		total:     uint64(n),
		remaining: uint64(n),
		prev:      cut.PrevAddr,
		pool:      orDefaultPool(pool),
	}, nil
}

// MapBytes opens a regular file as a read-only byte view: memory-mapped
// where the platform supports it, read fully into memory otherwise.
// The Closer unmaps and closes the file and must be called only after
// the view is no longer referenced. It is the raw-bytes sibling of
// OpenMmap for callers — like the shard planner — that need the view
// itself, not a decoder over it.
func MapBytes(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if !st.Mode().IsRegular() {
		f.Close()
		return nil, nil, fmt.Errorf("trace: %s: not a regular file", path)
	}
	if data, err := mapFile(f, st.Size()); err == nil {
		recordMmapOpen(int64(len(data)), false)
		return data, &mappedCloser{data: data, unmap: true, f: f}, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	recordMmapOpen(int64(len(data)), true)
	return data, &mappedCloser{}, nil
}
