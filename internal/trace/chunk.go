package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"busenc/internal/obs"
)

// Streaming chunk layer. The batched evaluation engine (PR 1) made codec
// throughput outrun trace materialization: loading a multi-GB trace into
// a []Entry now dominates both wall time and memory. This file defines
// the bounded-memory alternative — traces are consumed as a sequence of
// pooled fixed-capacity chunks in structure-of-arrays layout, so the
// working set of an evaluation is a handful of chunks regardless of
// trace length. Chunks are reference-counted because the fan-out
// evaluator (core.EvaluateStreaming) broadcasts one chunk to several
// codec workers; the last release returns the chunk to its pool.

// DefaultChunkLen is the default chunk capacity in entries. It matches
// the codec engine's batch granularity (codec runChunk), so one chunk
// feeds one EncodeBatch call: 4096 × (8 B addr + 1 B kind) ≈ 36 KiB,
// comfortably cache-resident.
const DefaultChunkLen = 4096

// Chunk is a block of consecutive trace entries in structure-of-arrays
// layout: Addrs[i] and Kinds[i] describe entry i. Chunks are pooled and
// reference-counted; a consumer that is handed a chunk owns one
// reference and must call Release exactly once when done. Holders must
// treat Addrs/Kinds as read-only.
type Chunk struct {
	Addrs []uint64
	Kinds []Kind

	refs atomic.Int32
	pool *ChunkPool
}

// Len returns the number of entries in the chunk.
func (c *Chunk) Len() int { return len(c.Addrs) }

// Entry returns entry i as a trace.Entry.
func (c *Chunk) Entry(i int) Entry { return Entry{Addr: c.Addrs[i], Kind: c.Kinds[i]} }

// Retain adds extra references to the chunk, one per additional consumer
// the caller is about to hand it to.
func (c *Chunk) Retain(extra int) {
	if extra > 0 {
		c.refs.Add(int32(extra))
	}
}

// Release drops one reference. When the last reference is dropped the
// chunk is reset and returned to its pool for reuse.
func (c *Chunk) Release() {
	n := c.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("trace: Chunk.Release without matching reference")
	}
	c.Addrs = c.Addrs[:0]
	c.Kinds = c.Kinds[:0]
	metrics().poolInUse.Add(-1)
	if c.pool != nil {
		c.pool.pool.Put(c)
	}
}

// append adds one entry; the parsers fill chunks through this. The
// backing arrays are allocated at pool capacity, so no reallocation
// happens while a chunk stays within its pool's chunk length.
func (c *Chunk) append(addr uint64, kind Kind) {
	c.Addrs = append(c.Addrs, addr)
	c.Kinds = append(c.Kinds, kind)
}

// ChunkPool recycles chunks of a fixed capacity. The zero value is not
// usable; construct with NewChunkPool. A nil *ChunkPool passed to the
// Open* readers selects a shared package-level pool of DefaultChunkLen
// chunks.
type ChunkPool struct {
	capEntries int
	pool       sync.Pool
}

// NewChunkPool returns a pool of chunks holding up to chunkLen entries
// each (DefaultChunkLen if chunkLen <= 0).
func NewChunkPool(chunkLen int) *ChunkPool {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	p := &ChunkPool{capEntries: chunkLen}
	p.pool.New = func() any {
		metrics().poolMisses.Inc()
		return &Chunk{
			Addrs: make([]uint64, 0, chunkLen),
			Kinds: make([]Kind, 0, chunkLen),
			pool:  p,
		}
	}
	return p
}

// Cap returns the chunk capacity in entries.
func (p *ChunkPool) Cap() int { return p.capEntries }

// Get returns an empty chunk with one reference held by the caller.
func (p *ChunkPool) Get() *Chunk {
	m := metrics()
	m.poolGets.Inc()
	m.poolInUse.Add(1)
	c := p.pool.Get().(*Chunk)
	c.refs.Store(1)
	return c
}

// defaultChunkPool backs the nil-pool convenience of the Open* readers
// and Stream.Chunks; sharing it across calls keeps steady-state chunk
// allocations at zero process-wide.
var defaultChunkPool = NewChunkPool(DefaultChunkLen)

func orDefaultPool(p *ChunkPool) *ChunkPool {
	if p == nil {
		return defaultChunkPool
	}
	return p
}

// ChunkReader is an iterator over a trace as a sequence of chunks.
//
// Next returns the next chunk (never empty) or io.EOF after the last
// one; any other error means the underlying source is corrupt or
// unreadable. The caller receives one reference to the returned chunk
// and must Release it (after Retain-ing for any additional consumers).
// After a non-nil error, Next returns the same error on every
// subsequent call.
//
// Name and Width report the trace metadata. For header-carrying formats
// they are valid immediately after Open; the text format allows
// metadata comments anywhere, so they are authoritative only once Next
// has returned io.EOF (leading metadata — the layout WriteText emits —
// is parsed eagerly at Open).
type ChunkReader interface {
	Next() (*Chunk, error)
	Name() string
	Width() int
}

// streamChunks adapts a materialized Stream to the ChunkReader
// interface, copying entries into pooled chunks. It is the bridge that
// lets streaming consumers run over in-memory streams (and lets parity
// tests compare the two paths at arbitrary chunk sizes).
type streamChunks struct {
	s    *Stream
	pos  int
	pool *ChunkPool
}

// Chunks returns a ChunkReader over the stream with chunks of chunkLen
// entries (DefaultChunkLen if chunkLen <= 0). The stream must not be
// mutated while the reader is in use.
func (s *Stream) Chunks(chunkLen int) ChunkReader {
	pool := defaultChunkPool
	if chunkLen > 0 && chunkLen != DefaultChunkLen {
		pool = NewChunkPool(chunkLen)
	}
	return &streamChunks{s: s, pool: pool}
}

func (r *streamChunks) Next() (*Chunk, error) {
	if r.pos >= len(r.s.Entries) {
		return nil, io.EOF
	}
	ch := r.pool.Get()
	end := r.pos + r.pool.Cap()
	if end > len(r.s.Entries) {
		end = len(r.s.Entries)
	}
	for _, e := range r.s.Entries[r.pos:end] {
		ch.append(e.Addr, e.Kind)
	}
	r.pos = end
	return ch, nil
}

func (r *streamChunks) Name() string { return r.s.Name }
func (r *streamChunks) Width() int   { return r.s.Width }

// entryCounter is implemented by readers that know the total entry
// count up front (the binary format declares it in the header); ReadAll
// uses it to preallocate.
type entryCounter interface {
	EntryCount() (uint64, bool)
}

// ReadAll drains a ChunkReader into a materialized Stream. It is the
// compatibility bridge for callers that genuinely need the whole trace
// in memory; the streaming evaluators never call it.
func ReadAll(r ChunkReader) (_ *Stream, err error) {
	sp := obs.StartSpan("trace.read_all", obs.StageRead).WithStream(r.Name())
	defer func() { sp.EndErr(err) }()
	s := New(r.Name(), r.Width())
	if ec, ok := r.(entryCounter); ok {
		if n, known := ec.EntryCount(); known && n <= 1<<30 {
			s.Entries = make([]Entry, 0, n)
		}
	}
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, a := range ch.Addrs {
			s.Entries = append(s.Entries, Entry{Addr: a, Kind: ch.Kinds[i]})
		}
		ch.Release()
	}
	// Text metadata comments may legally appear after entries; pick up
	// the final values.
	s.Name = r.Name()
	s.Width = r.Width()
	return s, nil
}

// Copy drains a ChunkReader into a ChunkWriterTo-style sink function,
// passing each chunk exactly once; the sink must not retain the chunk
// beyond the call. It returns the total number of entries forwarded.
func Copy(r ChunkReader, sink func(*Chunk) error) (int64, error) {
	var n int64
	for {
		ch, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n += int64(ch.Len())
		serr := sink(ch)
		ch.Release()
		if serr != nil {
			return n, serr
		}
	}
}

// errString formats the position prefix of parser errors: with a
// filename it is "file:line:", otherwise "line N:".
func posError(file string, line int, format string, args ...any) error {
	if file != "" {
		return fmt.Errorf("trace: %s:%d: %s", file, line, fmt.Sprintf(format, args...))
	}
	return fmt.Errorf("trace: line %d: %s", line, fmt.Sprintf(format, args...))
}
