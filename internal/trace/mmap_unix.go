//go:build linux || darwin

package trace

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. Empty files are rejected
// (mmap of length 0 is an error) so callers fall back to reading.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
