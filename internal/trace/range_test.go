package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIndexBETRRangeParity: cutting a serialized stream into parts with
// IndexBETR and re-decoding every part through NewMemRangeReader must
// reproduce the original entries exactly — cut metadata (byte offsets,
// delta bases, boundary entries) included.
func TestIndexBETRRangeParity(t *testing.T) {
	s := randomStream(4000, 19)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, parts := range []int{1, 2, 3, 7, 16, 63} {
		idx, err := IndexBETR(data, "mem", parts)
		if err != nil {
			t.Fatalf("parts=%d: IndexBETR: %v", parts, err)
		}
		if idx.Name != s.Name || idx.Width != s.Width || idx.Total != int64(s.Len()) {
			t.Fatalf("parts=%d: header %q/%d/%d", parts, idx.Name, idx.Width, idx.Total)
		}
		if len(idx.Cuts) != parts+1 {
			t.Fatalf("parts=%d: %d cuts", parts, len(idx.Cuts))
		}
		for k := 0; k < parts; k++ {
			cut, next := idx.Cuts[k], idx.Cuts[k+1]
			n := next.Entry - cut.Entry
			r, err := NewMemRangeReader(data, idx.Name, idx.Width, cut, n, "mem", NewChunkPool(13))
			if err != nil {
				t.Fatalf("parts=%d shard=%d: %v", parts, k, err)
			}
			got, err := ReadAll(r)
			if err != nil {
				t.Fatalf("parts=%d shard=%d: decode: %v", parts, k, err)
			}
			want := s.Entries[cut.Entry:next.Entry]
			if len(got.Entries) != len(want) {
				t.Fatalf("parts=%d shard=%d: %d entries, want %d", parts, k, len(got.Entries), len(want))
			}
			for i := range want {
				if got.Entries[i] != want[i] {
					t.Fatalf("parts=%d shard=%d: entry %d = %+v, want %+v", parts, k, i, got.Entries[i], want[i])
				}
			}
			// Boundary metadata: entries -1 and -2 relative to the cut.
			if cut.Entry >= 1 {
				e := s.Entries[cut.Entry-1]
				if cut.PrevAddr != e.Addr || cut.PrevKind != e.Kind {
					t.Fatalf("parts=%d shard=%d: prev = %#x/%v, want %#x/%v",
						parts, k, cut.PrevAddr, cut.PrevKind, e.Addr, e.Kind)
				}
			}
			if cut.Entry >= 2 {
				e := s.Entries[cut.Entry-2]
				if cut.Prev2Addr != e.Addr || cut.Prev2Kind != e.Kind {
					t.Fatalf("parts=%d shard=%d: prev2 mismatch", parts, k)
				}
			}
		}
	}
}

// TestIndexBETRMorePartsThanEntries: over-splitting a tiny stream
// yields empty shards that still decode (to nothing) and still carry
// correct boundary metadata.
func TestIndexBETRMorePartsThanEntries(t *testing.T) {
	s := randomStream(3, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	idx, err := IndexBETR(buf.Bytes(), "", 8)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for k := 0; k < 8; k++ {
		total += idx.Cuts[k+1].Entry - idx.Cuts[k].Entry
	}
	if total != 3 {
		t.Fatalf("shard sizes sum to %d, want 3", total)
	}
}

// TestIndexBETRErrors: malformed views fail with positioned errors.
func TestIndexBETRErrors(t *testing.T) {
	s := randomStream(100, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := IndexBETR(data, "", 0); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := IndexBETR(nil, "x.betr", 2); err == nil || !strings.Contains(err.Error(), "x.betr") {
		t.Errorf("empty view: err = %v, want positioned error", err)
	}
	// Truncate inside the entry payload: the scan must fail, not panic.
	for _, cut := range []int{len(data) - 1, len(data) / 2, 12} {
		if cut <= 0 || cut >= len(data) {
			continue
		}
		if _, err := IndexBETR(data[:cut], "t.betr", 4); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestMapBytesRoundTrip: the raw view matches the file, and the closer
// releases it.
func TestMapBytesRoundTrip(t *testing.T) {
	s := randomStream(500, 2)
	path := writeBinaryFile(t, s)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data, closer, err := MapBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("mapped view diverges from file contents")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MapBytes(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
