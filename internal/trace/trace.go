// Package trace represents address streams observed on a processor bus.
//
// A stream is an ordered sequence of bus references. Each reference carries
// the address, the reference kind (instruction fetch, data read, data
// write), and therefore the value of the SEL de-multiplexing signal used by
// the dual codes of the paper (SEL is asserted for instruction addresses).
//
// The package also computes the stream statistics the paper reports:
// in-sequence fraction for a given stride, sequential run lengths, and
// jump-distance distributions.
package trace

import "fmt"

// Kind classifies a bus reference.
type Kind uint8

const (
	// Instr is an instruction fetch. SEL is asserted for Instr entries.
	Instr Kind = iota
	// DataRead is a data load.
	DataRead
	// DataWrite is a data store.
	DataWrite
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "I"
	case DataRead:
		return "R"
	case DataWrite:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsData reports whether the reference is a data access (read or write).
func (k Kind) IsData() bool { return k == DataRead || k == DataWrite }

// Entry is one bus reference.
type Entry struct {
	Addr uint64
	Kind Kind
}

// Sel returns the value of the SEL bus signal for this entry: true when an
// instruction address is on the bus.
func (e Entry) Sel() bool { return e.Kind == Instr }

// Stream is an ordered address stream together with identifying metadata.
type Stream struct {
	// Name identifies the originating benchmark or generator.
	Name string
	// Width is the significant address width in bits (the paper uses 32).
	Width int
	// Entries are the references in bus order.
	Entries []Entry
}

// New returns an empty stream with the given name and width.
func New(name string, width int) *Stream {
	return &Stream{Name: name, Width: width}
}

// Append adds a reference to the stream.
func (s *Stream) Append(addr uint64, kind Kind) {
	s.Entries = append(s.Entries, Entry{Addr: addr, Kind: kind})
}

// Len returns the number of references.
func (s *Stream) Len() int { return len(s.Entries) }

// Addresses returns the raw address sequence.
func (s *Stream) Addresses() []uint64 {
	out := make([]uint64, len(s.Entries))
	for i, e := range s.Entries {
		out[i] = e.Addr
	}
	return out
}

// Filter returns a new stream containing only entries for which keep
// returns true, preserving order.
func (s *Stream) Filter(name string, keep func(Entry) bool) *Stream {
	out := New(name, s.Width)
	for _, e := range s.Entries {
		if keep(e) {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// InstrOnly returns the instruction address sub-stream.
func (s *Stream) InstrOnly() *Stream {
	return s.Filter(s.Name+".instr", func(e Entry) bool { return e.Kind == Instr })
}

// DataOnly returns the data address sub-stream.
func (s *Stream) DataOnly() *Stream {
	return s.Filter(s.Name+".data", func(e Entry) bool { return e.Kind.IsData() })
}

// Slice returns a sub-stream view of entries [lo, hi).
func (s *Stream) Slice(lo, hi int) *Stream {
	return &Stream{Name: s.Name, Width: s.Width, Entries: s.Entries[lo:hi]}
}

// Mux interleaves instruction and data streams into one multiplexed stream
// by simple round-robin against the data stream's original positions: this
// is only useful for synthetic streams; simulator-produced streams are
// already in true bus order.
func Mux(name string, width int, instr, data []uint64, pattern []Kind) *Stream {
	s := New(name, width)
	ii, di := 0, 0
	for _, k := range pattern {
		switch {
		case k == Instr && ii < len(instr):
			s.Append(instr[ii], Instr)
			ii++
		case k.IsData() && di < len(data):
			s.Append(data[di], k)
			di++
		}
	}
	return s
}
