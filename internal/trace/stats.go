package trace

import (
	"math"
	"math/bits"
	"sort"

	"busenc/internal/bus"
)

// Stats summarizes the statistical behaviour of an address stream; these
// are the quantities the paper's Tables 2-7 report per benchmark.
type Stats struct {
	// Length is the number of references.
	Length int
	// InSeq is the number of references whose address equals the previous
	// address plus the stride (counted over successive references of the
	// same stream, as in the paper).
	InSeq int
	// InSeqFrac is InSeq / (Length-1).
	InSeqFrac float64
	// BinaryTransitions is the total bus transition count under plain
	// binary encoding — the reference column of the paper's tables.
	BinaryTransitions int64
	// MeanRunLen is the average length of maximal in-sequence runs.
	MeanRunLen float64
	// MaxRunLen is the longest in-sequence run observed.
	MaxRunLen int
	// UniqueAddrs is the number of distinct addresses referenced.
	UniqueAddrs int
}

// Analyze computes Stats for the stream using the given stride (the
// paper's S: the address increment of an in-sequence reference, a power of
// two reflecting the addressability of the architecture).
func (s *Stream) Analyze(stride uint64) Stats {
	st := Stats{Length: len(s.Entries)}
	if len(s.Entries) == 0 {
		return st
	}
	seen := make(map[uint64]struct{}, len(s.Entries))
	run := 0
	runs := 0
	runSum := 0
	for i, e := range s.Entries {
		seen[e.Addr] = struct{}{}
		if i == 0 {
			continue
		}
		if e.Addr == s.Entries[i-1].Addr+stride {
			st.InSeq++
			run++
			if run > st.MaxRunLen {
				st.MaxRunLen = run
			}
		} else if run > 0 {
			runs++
			runSum += run
			run = 0
		}
	}
	if run > 0 {
		runs++
		runSum += run
	}
	if runs > 0 {
		st.MeanRunLen = float64(runSum) / float64(runs)
	}
	if len(s.Entries) > 1 {
		st.InSeqFrac = float64(st.InSeq) / float64(len(s.Entries)-1)
	}
	st.BinaryTransitions = bus.CountTransitions(s.Addresses(), s.Width)
	st.UniqueAddrs = len(seen)
	return st
}

// InSeqFraction returns the fraction of successive references that are
// in-sequence for the stride.
func (s *Stream) InSeqFraction(stride uint64) float64 {
	return s.Analyze(stride).InSeqFrac
}

// PerLineActivity returns, per line, the transition probability per cycle
// under binary encoding.
func (s *Stream) PerLineActivity() []float64 {
	b := bus.New(s.Width)
	for _, e := range s.Entries {
		b.Drive(e.Addr)
	}
	per := b.PerLine()
	out := make([]float64, len(per))
	denom := float64(s.Len() - 1)
	if denom <= 0 {
		return out
	}
	for i, c := range per {
		out[i] = float64(c) / denom
	}
	return out
}

// JumpHistogram returns the distribution of absolute address deltas for
// out-of-sequence successive references, bucketed by power of two:
// bucket i counts deltas d with 2^i <= d < 2^(i+1). Bucket 0 also counts
// delta 1 when it is out of sequence for the stride.
func (s *Stream) JumpHistogram(stride uint64) []int {
	buckets := make([]int, 65)
	for i := 1; i < len(s.Entries); i++ {
		prev, cur := s.Entries[i-1].Addr, s.Entries[i].Addr
		if cur == prev+stride {
			continue
		}
		var d uint64
		if cur >= prev {
			d = cur - prev
		} else {
			d = prev - cur
		}
		if d == 0 {
			continue
		}
		buckets[bits.Len64(d)-1]++
	}
	// Trim trailing empty buckets.
	hi := len(buckets)
	for hi > 0 && buckets[hi-1] == 0 {
		hi--
	}
	return buckets[:hi]
}

// Entropy returns the zero-order entropy (bits/reference) of the address
// sequence; a crude measure of how compressible the stream is.
func (s *Stream) Entropy() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	counts := make(map[uint64]int)
	for _, e := range s.Entries {
		counts[e.Addr]++
	}
	total := float64(len(s.Entries))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// WorkingSet returns the addresses touched, sorted ascending.
func (s *Stream) WorkingSet() []uint64 {
	set := make(map[uint64]struct{})
	for _, e := range s.Entries {
		set[e.Addr] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
