//go:build !linux && !darwin

package trace

import "os"

// No mmap on this platform: OpenMmap's read-into-memory fallback and
// OpenFile's streaming path carry the load instead.
func mapFile(f *os.File, size int64) ([]byte, error) { return nil, errMmapUnsupported }

func unmapFile(data []byte) error { return nil }
