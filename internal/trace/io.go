package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format: a human-readable trace file.
//
//	# busenc trace v1
//	# name: <name>
//	# width: <bits>
//	I 00400000
//	R 10008fa0
//	W 10008fa4
//
// Lines starting with '#' are comments; each entry line is "<kind> <hex>".

// WriteText writes the stream in the text trace format.
func WriteText(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# busenc trace v1\n# name: %s\n# width: %d\n", s.Name, s.Width)
	for _, e := range s.Entries {
		fmt.Fprintf(bw, "%s %x\n", e.Kind, e.Addr)
	}
	return bw.Flush()
}

// ReadText parses a text trace.
func ReadText(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	s := New("", 32)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			switch {
			case strings.HasPrefix(meta, "name:"):
				s.Name = strings.TrimSpace(strings.TrimPrefix(meta, "name:"))
			case strings.HasPrefix(meta, "width:"):
				w, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(meta, "width:")))
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad width: %v", lineNo, err)
				}
				s.Width = w
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: expected \"<kind> <hex>\", got %q", lineNo, line)
		}
		var k Kind
		switch fields[0] {
		case "I":
			k = Instr
		case "R":
			k = DataRead
		case "W":
			k = DataWrite
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %v", lineNo, err)
		}
		s.Entries = append(s.Entries, Entry{Addr: addr, Kind: k})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Binary format: a compact delta-encoded trace.
//
//	magic "BETR" | u8 version | u8 width | uvarint nameLen | name bytes |
//	uvarint count | count * (u8 kind | varint addrDelta)
//
// Deltas are signed varints relative to the previous address, which makes
// sequential traces extremely small.

const binMagic = "BETR"

// WriteBinary writes the stream in the compact binary trace format.
func WriteBinary(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	bw.WriteByte(1)
	bw.WriteByte(byte(s.Width))
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s.Name)))
	bw.Write(buf[:n])
	bw.WriteString(s.Name)
	n = binary.PutUvarint(buf[:], uint64(len(s.Entries)))
	bw.Write(buf[:n])
	prev := uint64(0)
	for _, e := range s.Entries {
		bw.WriteByte(byte(e.Kind))
		delta := int64(e.Addr - prev)
		n = binary.PutVarint(buf[:], delta)
		bw.Write(buf[:n])
		prev = e.Addr
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace.
func ReadBinary(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	widthB, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	s := New(string(name), int(widthB))
	s.Entries = make([]Entry, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", i, err)
		}
		if kb > byte(DataWrite) {
			return nil, fmt.Errorf("trace: entry %d: bad kind %d", i, kb)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", i, err)
		}
		prev += uint64(delta)
		s.Entries = append(s.Entries, Entry{Addr: prev, Kind: Kind(kb)})
	}
	return s, nil
}
