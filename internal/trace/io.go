package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Text format: a human-readable trace file.
//
//	# busenc trace v1
//	# name: <name>
//	# width: <bits>
//	I 00400000
//	R 10008fa0
//	W 10008fa4
//
// Lines starting with '#' are comments; each entry line is "<kind> <hex>".
// The "name:" and "width:" metadata comments apply from the point they
// appear; WriteText always emits them before the first entry. Width
// defaults to 32, and an entry whose address does not fit in the
// declared width is a parse error (it would otherwise be silently
// truncated by every codec's payload mask).
//
// Parsing is served by the streaming reader in streamio.go: ReadText is
// a convenience that materializes the whole trace; use OpenText (or
// OpenFile) to iterate pooled chunks in bounded memory.

// WriteText writes the stream in the text trace format.
func WriteText(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# busenc trace v1\n# name: %s\n# width: %d\n", s.Name, s.Width)
	for _, e := range s.Entries {
		fmt.Fprintf(bw, "%s %x\n", e.Kind, e.Addr)
	}
	return bw.Flush()
}

// ReadText parses a text trace, materializing it fully. Errors carry
// the 1-based line number; use ReadTextNamed to include the filename.
func ReadText(r io.Reader) (*Stream, error) { return ReadTextNamed(r, "") }

// ReadTextNamed is ReadText with a filename for error positions
// ("trace: file.txt:17: ...").
func ReadTextNamed(r io.Reader, file string) (*Stream, error) {
	cr, err := OpenText(r, file, nil)
	if err != nil {
		return nil, err
	}
	return ReadAll(cr)
}

// Binary format: a compact delta-encoded trace.
//
// Header layout (all multi-byte integers are unsigned LEB128 varints as
// produced by encoding/binary.PutUvarint):
//
//	offset  field
//	0       magic "BETR" (4 bytes)
//	4       version (u8; currently 1)
//	5       width (u8; significant address bits, 1..64)
//	6       nameLen (uvarint) followed by nameLen bytes of stream name
//	...     count (uvarint): number of entries that follow
//
// Each entry is then one byte of Kind (0=I, 1=R, 2=W) followed by the
// signed zig-zag varint delta of the address relative to the previous
// entry's address (the implicit address before the first entry is 0).
// Delta coding makes sequential traces extremely small: an in-sequence
// run costs two bytes per reference.
//
// The count field lets readers preallocate and detect truncation; it
// also means WriteBinary needs the whole stream up front. Streaming
// reads never need the whole trace: OpenBinary decodes pooled chunks.

const binMagic = "BETR"

// WriteBinary writes the stream in the compact binary trace format.
func WriteBinary(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	bw.WriteByte(1)
	bw.WriteByte(byte(s.Width))
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s.Name)))
	bw.Write(buf[:n])
	bw.WriteString(s.Name)
	n = binary.PutUvarint(buf[:], uint64(len(s.Entries)))
	bw.Write(buf[:n])
	prev := uint64(0)
	for _, e := range s.Entries {
		bw.WriteByte(byte(e.Kind))
		delta := int64(e.Addr - prev)
		n = binary.PutVarint(buf[:], delta)
		bw.Write(buf[:n])
		prev = e.Addr
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace, materializing it fully. Use
// OpenBinary (or OpenFile) to iterate pooled chunks in bounded memory.
func ReadBinary(r io.Reader) (*Stream, error) { return ReadBinaryNamed(r, "") }

// ReadBinaryNamed is ReadBinary with a filename for error positions.
func ReadBinaryNamed(r io.Reader, file string) (*Stream, error) {
	cr, err := OpenBinary(r, file, nil)
	if err != nil {
		return nil, err
	}
	return ReadAll(cr)
}
