package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomStream(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := New("rand", 32)
	for i := 0; i < n; i++ {
		s.Append(rng.Uint64()&0xFFFFFFFF, Kind(rng.Intn(3)))
	}
	return s
}

func streamsEqual(a, b *Stream) bool {
	if a.Name != b.Name || a.Width != b.Width || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	s := randomStream(500, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("text round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := randomStream(500, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !streamsEqual(s, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	s := New("empty", 24)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "empty" || got.Width != 24 || got.Len() != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestBinaryCompactOnSequential(t *testing.T) {
	s := New("seq", 32)
	for i := 0; i < 1000; i++ {
		s.Append(0x400000+uint64(i)*4, Instr)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Delta coding means ~2 bytes per sequential entry.
	if buf.Len() > 3*1000 {
		t.Errorf("sequential trace encoded in %d bytes; delta coding broken?", buf.Len())
	}
}

func TestReadTextParsesMetadata(t *testing.T) {
	in := "# busenc trace v1\n# name: hello\n# width: 24\nI 400000\nR ff\n\nW 10\n"
	s, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "hello" || s.Width != 24 {
		t.Errorf("metadata: name=%q width=%d", s.Name, s.Width)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Entries[0] != (Entry{0x400000, Instr}) ||
		s.Entries[1] != (Entry{0xff, DataRead}) ||
		s.Entries[2] != (Entry{0x10, DataWrite}) {
		t.Errorf("entries: %+v", s.Entries)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"I\n",                                // missing address
		"X 400000\n",                         // unknown kind
		"I zzz\n",                            // bad hex
		"# width: x\n",                       // bad width
		"# width: 65\n",                      // width beyond 64 lines
		"I 1 2 3\n",                          // too many fields
		"# width: 16\nI 400000\n",            // entry exceeds declared width
		"I 10000000000000000\n",              // overflows 64 bits
		"# width: 64\nI 1ffffffffffffffff\n", // overflows even at full width
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", in)
		}
	}
}

// TestReadTextErrorPositions pins the satellite contract: every parse
// error carries the filename (when known) and the 1-based line number.
func TestReadTextErrorPositions(t *testing.T) {
	in := "# name: x\nI 400000\nQ 1234\n"
	_, err := ReadTextNamed(strings.NewReader(in), "prog.trace")
	if err == nil {
		t.Fatal("bad kind accepted")
	}
	if !strings.Contains(err.Error(), "prog.trace:3:") {
		t.Errorf("error %q does not carry file:line position", err)
	}
	_, err = ReadText(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("anonymous reader error %q does not carry line number", err)
	}
	// Width rejection reports the position of the offending entry.
	in = "# width: 12\nI fff\nI 1000\n"
	_, err = ReadTextNamed(strings.NewReader(in), "w.trace")
	if err == nil || !strings.Contains(err.Error(), "w.trace:3:") || !strings.Contains(err.Error(), "width 12") {
		t.Errorf("width rejection error %q lacks position or width", err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("BET"))); err == nil {
		t.Error("truncated magic accepted")
	}
	// Version 2 is unknown.
	if _, err := ReadBinary(bytes.NewReader([]byte{'B', 'E', 'T', 'R', 2, 32, 0, 0})); err == nil {
		t.Error("unknown version accepted")
	}
	// Truncated entry section.
	var buf bytes.Buffer
	s := randomStream(10, 3)
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestBinaryRejectsBadKind(t *testing.T) {
	// Handcraft: magic, v1, width 8, name "", count 1, kind 7, delta 0.
	raw := []byte{'B', 'E', 'T', 'R', 1, 8, 0, 1, 7, 0}
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("bad kind accepted")
	}
}
