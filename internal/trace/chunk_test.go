package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drain reads every chunk of r into a fresh Stream, checking the
// never-empty-chunk contract along the way.
func drain(t *testing.T, r ChunkReader) *Stream {
	t.Helper()
	s, err := ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return s
}

func TestStreamChunksRoundTrip(t *testing.T) {
	s := randomStream(5000, 11)
	for _, chunkLen := range []int{1, 7, 4096, 0, 5000, 9999} {
		got := drain(t, s.Chunks(chunkLen))
		if !streamsEqual(s, got) {
			t.Errorf("chunkLen %d: round trip mismatch", chunkLen)
		}
	}
}

func TestStreamChunksSizes(t *testing.T) {
	s := randomStream(100, 12)
	r := s.Chunks(7)
	total, last := 0, 0
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ch.Len() == 0 {
			t.Fatal("empty chunk returned")
		}
		if last != 0 && last != 7 {
			t.Fatalf("short chunk of %d entries before the final one", last)
		}
		last = ch.Len()
		total += ch.Len()
		ch.Release()
	}
	if total != 100 {
		t.Errorf("chunks covered %d entries, want 100", total)
	}
	if last != 100%7 {
		t.Errorf("final chunk has %d entries, want %d", last, 100%7)
	}
}

func TestOpenTextStreaming(t *testing.T) {
	s := randomStream(3000, 13)
	s.Name = "stream-me"
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	r, err := OpenText(bytes.NewReader(buf.Bytes()), "", NewChunkPool(64))
	if err != nil {
		t.Fatal(err)
	}
	// Header metadata is eager: available before the first Next.
	if r.Name() != "stream-me" || r.Width() != 32 {
		t.Errorf("eager header: name=%q width=%d", r.Name(), r.Width())
	}
	got := drain(t, r)
	if !streamsEqual(s, got) {
		t.Error("text streaming round trip mismatch")
	}
}

func TestOpenBinaryStreaming(t *testing.T) {
	s := randomStream(3000, 14)
	s.Name = "bin-stream"
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBinary(bytes.NewReader(buf.Bytes()), "", NewChunkPool(64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "bin-stream" || r.Width() != 32 {
		t.Errorf("header: name=%q width=%d", r.Name(), r.Width())
	}
	if n, ok := r.(interface{ EntryCount() (uint64, bool) }); ok {
		if c, known := n.EntryCount(); !known || c != 3000 {
			t.Errorf("EntryCount = %d,%v", c, known)
		}
	} else {
		t.Error("binary reader does not expose EntryCount")
	}
	got := drain(t, r)
	if !streamsEqual(s, got) {
		t.Error("binary streaming round trip mismatch")
	}
}

func TestOpenFileAutodetect(t *testing.T) {
	s := randomStream(500, 15)
	s.Name = "auto"
	dir := t.TempDir()
	binPath := filepath.Join(dir, "t.bin")
	txtPath := filepath.Join(dir, "t.txt")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{binPath, txtPath} {
		r, closer, err := OpenFile(path, nil)
		if err != nil {
			t.Fatalf("OpenFile(%s): %v", path, err)
		}
		got := drain(t, r)
		closer.Close()
		if !streamsEqual(s, got) {
			t.Errorf("%s: round trip mismatch", path)
		}
	}
}

func TestOpenFileErrorsCarryPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(path, []byte("I 400000\nX nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, closer, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	_, err = ReadAll(r)
	if err == nil || !strings.Contains(err.Error(), "bad.trace:2:") {
		t.Errorf("error %q lacks file:line position", err)
	}
}

func TestChunkRefcount(t *testing.T) {
	p := NewChunkPool(8)
	ch := p.Get()
	ch.append(1, Instr)
	ch.Retain(2) // three consumers in total
	ch.Release()
	ch.Release()
	if ch.Len() != 1 {
		t.Error("chunk reset before last reference dropped")
	}
	ch.Release() // last reference: resets and returns to pool
	if ch.Len() != 0 {
		t.Error("chunk not reset on final release")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	ch2 := p.Get()
	ch2.Release()
	ch2.Release()
}

func TestTextReaderSticksAfterError(t *testing.T) {
	r, err := OpenText(strings.NewReader("I 1\nbogus line here\nI 2\n"), "", NewChunkPool(1))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := r.Next()
	if err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	ch.Release()
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("bad line not reported: %v", err)
	}
	if _, err2 := r.Next(); err2 == nil || err2 == io.EOF {
		t.Errorf("error not sticky: %v", err2)
	}
}

func TestCopy(t *testing.T) {
	s := randomStream(1000, 16)
	var n int64
	got, err := Copy(s.Chunks(33), func(ch *Chunk) error {
		n += int64(ch.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1000 || n != 1000 {
		t.Errorf("Copy forwarded %d/%d entries", got, n)
	}
}

func TestTextLongLineGrowsBuffer(t *testing.T) {
	// A comment far longer than the initial fill buffer must not break
	// the parser (the window grows up to maxLineLen).
	var sb strings.Builder
	sb.WriteString("# ")
	sb.WriteString(strings.Repeat("x", 3*fillBufSize))
	sb.WriteString("\nI 400000\n")
	s, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Entries[0].Addr != 0x400000 {
		t.Errorf("entries after long comment: %+v", s.Entries)
	}
}
