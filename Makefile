# CI entry points. `make ci` is what the repository considers green:
# lint (formatting, vet, staticcheck), build, race-enabled tests, a
# short fuzz smoke of the trace parsers, a span-tracing smoke of the
# observability exporter, the distributed-sweep smoke, the multi-tenant
# service smoke (a real daemon under 32-tenant load with a SIGTERM
# drain), and one timed pass of the headline evaluation benchmark.
# `make benchguard` is the separate regression gate: it regenerates the
# benchmark records and fails if they fall outside the committed
# records' tolerance bands. The CI workflow fans these out as separate
# jobs (see .github/workflows/ci.yml for the job layout).

GO ?= go

.PHONY: all ci build vet fmt-check lint staticcheck test test-stream fuzz-smoke trace-smoke dist-smoke serve-smoke net-smoke bench benchjson benchguard

all: ci

ci: lint build test test-stream fuzz-smoke trace-smoke dist-smoke serve-smoke net-smoke bench

# `make test` already races the dist package once; dist-smoke is the
# named CI scenario on top (see its comment below), cheap enough to
# repeat.

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; any output fails the gate.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The lint gate CI requires: formatting, vet, and pinned staticcheck.
lint: fmt-check vet staticcheck

# Staticcheck is pinned and fetched on demand by `go run`. A sandbox
# without module-proxy network cannot fetch it, so probe first and skip
# LOUDLY rather than fail the whole gate offline — CI has network and
# runs it for real.
STATICCHECK := $(GO) run honnef.co/go/tools/cmd/staticcheck@v0.4.7
staticcheck:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck SKIPPED: honnef.co/go/tools not fetchable (offline sandbox?) — the CI lint job runs it"; \
	fi

test:
	$(GO) test -race ./...

# The streaming pipeline's packages get a dedicated vet + race pass:
# the fan-out is the only concurrent producer/consumer machinery in the
# tree, and the pooled-chunk refcounts are easy to get subtly wrong.
test-stream:
	$(GO) vet ./internal/trace ./internal/core
	$(GO) test -race ./internal/trace ./internal/core

# Short coverage-guided fuzz smoke — enough to catch a freshly
# introduced panic on malformed input (trace parsers) or a broken
# snapshot/restore contract (codec state splitting) without stalling
# CI. Go allows one -fuzz target per invocation, hence separate runs.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadText -fuzztime=5s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzReadBinary -fuzztime=5s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzSnapshotSplit -fuzztime=5s ./internal/codec
	$(GO) test -run=NONE -fuzz=FuzzTransposeRoundTrip -fuzztime=5s ./internal/bus

# Span-tracing smoke: generate a small synthetic trace, evaluate it
# shard-parallel with the flight recorder exporting a Chrome trace-event
# file, then validate the file's structure and require the recorded
# spans to cover at least 95% of the traced wall-clock window — a hole
# bigger than that means a pipeline stage lost its instrumentation.
trace-smoke:
	mkdir -p .trace-smoke
	$(GO) run ./cmd/tracegen -bench gzip -synthetic -o .trace-smoke/smoke.trace
	$(GO) run ./cmd/paper -trace .trace-smoke/smoke.trace -parallel 4 -spantrace .trace-smoke/spans.json > /dev/null
	$(GO) run ./cmd/tracecheck -mincover 0.95 .trace-smoke/spans.json

# Distributed-sweep smoke: the exact CI scenarios live in
# TestDistSmoke — a 3-worker sweep over a 2^18-entry trace with one
# worker killed mid-sweep and the coordinator stopped at a checkpoint,
# then resumed to results bit-identical to codec.RunFast for every
# registered codec — and TestNetSmoke, the same kill + checkpoint +
# resume over two loopback TCP busencd peers. The coordinator/worker
# machinery is the most concurrent code in the tree, so the whole dist
# package (and the CLI that drives it) runs under the race detector
# here.
dist-smoke:
	$(GO) vet ./internal/dist ./cmd/busencsweep
	$(GO) test -race -run TestDistSmoke -v ./internal/dist
	$(GO) test -race -run TestNetSmoke -v ./internal/serve
	$(GO) test -race ./internal/dist ./cmd/busencsweep

# Multi-tenant service smoke — the exact CI scenario: build the daemon
# and the load harness as real binaries (SIGTERM must reach a real
# process, not `go run`'s wrapper), then drive 32 tenants of mixed
# upload / sync-eval / async-eval / poll traffic against a deliberately
# tiny queue. -smoke asserts the service contract: at least one
# queue-full 503 carrying Retry-After, at least one result-cache hit,
# parity on every collected result against an in-process reference
# evaluation, a mid-run SIGTERM drain that loses zero accepted jobs,
# and a clean daemon exit. The daemon's span flight recorder is dumped
# to .serve-smoke/spans.json for the CI artifact upload.
serve-smoke:
	mkdir -p .serve-smoke
	$(GO) build -o .serve-smoke/busencd ./cmd/busencd
	$(GO) build -o .serve-smoke/busencload ./cmd/busencload
	.serve-smoke/busencload -spawn .serve-smoke/busencd -tenants 32 -duration 5s -smoke -spansout .serve-smoke/spans.json

# Networked-pricing smoke — the CI scenario: two real busencd daemons
# on loopback ports (one carrying -dist-failafter 1 so its first /dist
# connection dies mid-sweep and is redialed), a busencsweep coordinator
# pricing over both via -peers, a second sweep against the now-warm
# stores (the trace ships by digest, so the re-sweep uploads nothing),
# then a fresh BENCH_dist.json with the tcp sub-record for the CI
# artifact upload.
net-smoke:
	mkdir -p .net-smoke/store1 .net-smoke/store2
	$(GO) build -o .net-smoke/busencd ./cmd/busencd
	$(GO) build -o .net-smoke/busencsweep ./cmd/busencsweep
	$(GO) run ./cmd/tracegen -bench gzip -synthetic -o .net-smoke/smoke.trace
	@set -e; \
	.net-smoke/busencd -listen 127.0.0.1:0 -store .net-smoke/store1 -dist-failafter 1 > .net-smoke/peer1.log 2>&1 & P1=$$!; \
	.net-smoke/busencd -listen 127.0.0.1:0 -store .net-smoke/store2 > .net-smoke/peer2.log 2>&1 & P2=$$!; \
	trap 'kill $$P1 $$P2 2>/dev/null || true' EXIT; \
	A1=; A2=; \
	for i in $$(seq 1 100); do \
		A1=$$(sed -n 's/^busencd: listening on \([^ ]*\).*/\1/p' .net-smoke/peer1.log); \
		A2=$$(sed -n 's/^busencd: listening on \([^ ]*\).*/\1/p' .net-smoke/peer2.log); \
		if [ -n "$$A1" ] && [ -n "$$A2" ]; then break; fi; sleep 0.1; \
	done; \
	if [ -z "$$A1" ] || [ -z "$$A2" ]; then \
		echo "net-smoke: peers failed to start"; cat .net-smoke/peer1.log .net-smoke/peer2.log; exit 1; fi; \
	echo "net-smoke: peers $$A1 $$A2"; \
	.net-smoke/busencsweep -trace .net-smoke/smoke.trace -workers 0 -peers $$A1,$$A2 -shards 16 > .net-smoke/sweep1.txt; \
	.net-smoke/busencsweep -trace .net-smoke/smoke.trace -workers 0 -peers $$A1,$$A2 -shards 16 -spantrace .net-smoke/merged-trace.json > .net-smoke/sweep2.txt; \
	cmp .net-smoke/sweep1.txt .net-smoke/sweep2.txt; \
	echo "net-smoke: networked sweeps reproduce bit-identically (tracing on/off)"; cat .net-smoke/sweep2.txt
	$(GO) run ./cmd/tracecheck -mincover 0.95 -minprocs 3 .net-smoke/merged-trace.json
	$(GO) run ./cmd/paper -benchdist .net-smoke/BENCH_dist.json

bench:
	$(GO) test -run=NONE -bench=BenchmarkTable4 -benchtime=1x .

# Regenerate the committed machine-readable benchmark records (see
# README "Performance"): BENCH_engine.json compares the seed reference
# path to the batched engine on Table 4; BENCH_stream.json compares the
# materialized path to the streaming fan-out; BENCH_parallel.json
# compares the warm sequential engine to shard-parallel pricing;
# BENCH_bitslice.json compares the scalar pricing kernel to the
# bit-sliced plane kernel on the seedable codec subset;
# BENCH_dist.json compares a serial decode+price pass to the
# coordinator/worker distributed sweep with real worker processes. All
# paths are explicit so the records can never drift apart.
# BENCH_serve.json captures one 32-tenant load-harness run against a
# spawned daemon (see serve-smoke); its parity and zero-lost-jobs
# fields are correctness invariants, its throughput a same-machine band.
benchjson:
	$(GO) run ./cmd/paper -benchjson BENCH_engine.json -benchstream BENCH_stream.json -benchparallel BENCH_parallel.json -benchbitslice BENCH_bitslice.json
	$(GO) run ./cmd/paper -benchdist BENCH_dist.json
	mkdir -p .serve-smoke
	$(GO) build -o .serve-smoke/busencd ./cmd/busencd
	$(GO) run ./cmd/busencload -spawn .serve-smoke/busencd -tenants 32 -duration 5s -benchjson BENCH_serve.json

# Benchmark-regression gate: generate fresh records into a scratch
# directory and compare them against the committed ones. Fails on a
# >25% speedup drop, any parity=false, an alloc-ratio collapse, the
# bit-sliced kernel's speedup falling below its absolute 5x floor, the
# distributed sweep falling below its absolute 1.3x floor on boxes with
# >= 4 CPUs, the networked sweep's pipelined dispatch falling below its
# 1.2x floor over lock-step on boxes with >= 2 CPUs and >= 2 peers
# (smaller boxes skip the floors with explicit "skipped: num_cpu=N"
# notes — loudly, never silently), or the digest-dedup re-sweep
# shipping any trace bytes (that one always binds: it is correctness,
# not performance).
benchguard:
	mkdir -p .bench-fresh .serve-smoke
	$(GO) run ./cmd/paper -benchjson .bench-fresh/BENCH_engine.json -benchstream .bench-fresh/BENCH_stream.json -benchparallel .bench-fresh/BENCH_parallel.json -benchbitslice .bench-fresh/BENCH_bitslice.json
	$(GO) run ./cmd/paper -benchdist .bench-fresh/BENCH_dist.json
	$(GO) build -o .serve-smoke/busencd ./cmd/busencd
	$(GO) run ./cmd/busencload -spawn .serve-smoke/busencd -tenants 32 -duration 5s -benchjson .bench-fresh/BENCH_serve.json
	$(GO) run ./cmd/benchguard -baseline . -fresh .bench-fresh
