# CI entry points. `make ci` is what the repository considers green:
# build, vet, race-enabled tests, and one timed pass of the headline
# evaluation benchmark.

GO ?= go

.PHONY: all ci build vet test bench benchjson

all: ci

ci: build vet test bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=BenchmarkTable4 -benchtime=1x .

# Regenerate the machine-readable engine benchmark record (see README
# "Performance"): seed reference path vs batched engine on Table 4.
benchjson:
	$(GO) run ./cmd/paper -benchjson BENCH_engine.json
