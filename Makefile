# CI entry points. `make ci` is what the repository considers green:
# build, vet, race-enabled tests, and one timed pass of the headline
# evaluation benchmark.

GO ?= go

.PHONY: all ci build vet test test-stream bench benchjson

all: ci

ci: build vet test test-stream bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# The streaming pipeline's packages get a dedicated vet + race pass:
# the fan-out is the only concurrent producer/consumer machinery in the
# tree, and the pooled-chunk refcounts are easy to get subtly wrong.
test-stream:
	$(GO) vet ./internal/trace ./internal/core
	$(GO) test -race ./internal/trace ./internal/core

bench:
	$(GO) test -run=NONE -bench=BenchmarkTable4 -benchtime=1x .

# Regenerate the machine-readable benchmark records (see README
# "Performance"): BENCH_engine.json compares the seed reference path to
# the batched engine on Table 4; BENCH_stream.json is written beside it
# and compares the materialized path to the streaming fan-out.
benchjson:
	$(GO) run ./cmd/paper -benchjson BENCH_engine.json
